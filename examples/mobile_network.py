#!/usr/bin/env python
"""Mobile ad-hoc network: topology control + routing under mobility.

The paper's adversarial routing model exists precisely because real
ad-hoc topologies change under the router's feet.  This example makes
that concrete: nodes move by a random-waypoint model, the ΘALG topology
is rebuilt every step (it is a 3-round local protocol, so this is
cheap), and the (T, γ)-balancing router keeps routing — it never learns
*why* the usable edge set changed, exactly as §3.1 models it.

A shortest-path router with tables frozen at t=0 runs alongside to show
the classic failure mode of table-driven protocols under churn.

Run:  python examples/mobile_network.py
"""

from __future__ import annotations

import math

import numpy as np

import repro
from repro.sim.baseline_routers import ShortestPathRouter
from repro.sim.mobility import RandomWaypointMobility


def main() -> None:
    n = 60
    steps = 300
    rng = np.random.default_rng(5)
    pts0 = repro.uniform_points(n, rng=rng)
    mobility = RandomWaypointMobility(pts0.copy(), speed=0.004, rng=rng)

    dests = [0, 1, 2, 3]
    balancing = repro.BalancingRouter(
        n, dests, repro.BalancingConfig(threshold=2.0, gamma=0.0, max_height=128)
    )
    # The frozen-table baseline routes on the t=0 topology forever.
    d0 = repro.max_range_for_connectivity(pts0, slack=1.5)
    frozen = ShortestPathRouter(repro.theta_algorithm(pts0, math.pi / 9, d0).graph)

    rebuild_ms = 0.0
    for t in range(steps):
        pts = mobility.advance()
        d = repro.max_range_for_connectivity(pts, slack=1.5)
        topo = repro.theta_algorithm(pts, math.pi / 9, d)
        g = topo.graph
        edges = g.directed_edge_array()
        costs = np.concatenate([g.edge_costs, g.edge_costs])

        injections = []
        if t < steps * 2 // 3:
            src = int(rng.integers(len(dests), n))
            injections.append((src, int(rng.choice(dests)), 1))

        balancing.run_step(edges, costs, injections)
        frozen.run_step(edges, costs, injections)

    for name, router in (("(T,γ)-balancing", balancing), ("frozen shortest-path", frozen)):
        st = router.stats
        print(
            f"{name:24s}: delivered {st.delivered:4d}/{st.accepted} accepted, "
            f"buffered {router.total_packets():3d}, avg cost "
            f"{st.average_cost if st.delivered else float('nan'):.4f}"
        )
    print(
        "\nThe balancing router adapts to every topology snapshot; the "
        "frozen-table\nrouter strands packets whenever yesterday's next hop "
        "is out of range."
    )
    del rebuild_ms


if __name__ == "__main__":
    main()
