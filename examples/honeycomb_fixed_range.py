#!/usr/bin/env python
"""Honeycomb algorithm: fixed transmission strength (§3.4).

When every radio transmits at the same fixed power (range 1) the paper
gets its strongest result: constant-factor competitiveness, independent
of n.  The trick is spatial: tile the plane with hexagons of side
3 + 2Δ, let each hexagon elect its maximum-benefit sender-receiver pair
as *contestant*, and have contestants transmit with probability
p_t ≤ 1/6 — Lemma 3.7 then guarantees each attempt succeeds with
probability ≥ 1/2 despite the guard-zone interference.

This example visualizes the mechanics: hexagon occupancy, contestant
counts, empirical success probability, and the throughput ramp as load
crosses the per-hexagon service rate p_t · Pr[success].

Run:  python examples/honeycomb_fixed_range.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.tables import render_table


def run_regime(router_rng, pts, inject_every: int, duration: int = 600):
    cfg = repro.HoneycombConfig(delta=0.5, threshold=1.0, max_height=256)
    router = repro.HoneycombRouter(pts, None, cfg, rng=router_rng)
    rng = np.random.default_rng(123)
    # Four streams between unit-disk neighbors in distinct hexagons.
    streams, used = [], set()
    while len(streams) < 4:
        k = int(rng.integers(0, len(router.directed_pairs)))
        s, t = (int(x) for x in router.directed_pairs[k])
        cell = tuple(int(c) for c in router.hexgrid.cell_of(pts[s]))
        if cell not in used:
            used.add(cell)
            streams.append((s, t))
    for t_step in range(duration):
        injections = [(s, d, 1) for (s, d) in streams] if t_step % inject_every == 0 else []
        router.step(injections)
    for _ in range(2 * duration):
        router.step([])
    return router


def main() -> None:
    n, side = 300, 20.0
    pts = repro.uniform_points(n, side=side, rng=2)
    grid = repro.HexGrid.for_guard_zone(0.5)
    occupancy = grid.group_by_cell(pts)
    print(
        f"{n} radios in a {side:.0f}x{side:.0f} field, fixed range 1, Δ=0.5 → "
        f"hexagon side {grid.side:.1f}, {len(occupancy)} occupied hexagons"
    )

    rows = []
    for label, inject_every in (("underload (rate 1/8)", 8), ("overload (rate 1)", 1)):
        r = run_regime(np.random.default_rng(9), pts, inject_every)
        st = r.stats
        rows.append(
            {
                "regime": label,
                "injected": st.injected,
                "delivered": st.delivered,
                "fraction": round(st.delivery_fraction, 3),
                "success_prob": round(st.successes / max(st.attempts, 1), 3),
                "lemma_3.7_floor": 0.5,
                "throughput/step": round(st.delivered / max(st.steps, 1), 3),
            }
        )
    print(render_table(rows, title="Honeycomb algorithm: two load regimes"))
    print(
        "\nPer-hexagon service rate is ≈ p_t × Pr[success] ≈ 1/6 × ~1: the "
        "underloaded\nregime delivers nearly everything, the overloaded one "
        "saturates at capacity\nand drops the excess — as OPT must, too."
    )


if __name__ == "__main__":
    main()
