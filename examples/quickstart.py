#!/usr/bin/env python
"""Quickstart: build an ad-hoc network topology and route packets over it.

The 60-second tour of the library, following the paper's layering:

1. drop n radios in the unit square (the node distribution);
2. pick a transmission range D that makes the network connectable;
3. run ΘALG — three rounds of local communication — to get the
   constant-degree, energy-efficient topology N (§2);
4. check N's quality: connectivity, degree bound, energy-stretch;
5. route a sustained packet stream over N with the (T, γ)-balancing
   algorithm (§3) and report throughput/energy.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import math

import repro


def main() -> None:
    # 1-2. Node distribution and transmission range.
    n = 120
    pts = repro.uniform_points(n, rng=7)
    max_range = repro.max_range_for_connectivity(pts, slack=1.5)
    print(f"{n} nodes in the unit square; transmission range D = {max_range:.3f}")

    # 3. Topology control: ΘALG with 20° cones.
    theta = math.pi / 9
    topo = repro.theta_algorithm(pts, theta, max_range)
    gstar = repro.transmission_graph(pts, max_range)
    print(f"G* has {gstar.n_edges} edges; ΘALG kept {topo.graph.n_edges}")

    # 4. Quality of N (the Lemma 2.1 / Theorem 2.2 guarantees).
    degree_bound = 2 * topo.partition.n_sectors
    print(f"connected: {repro.is_connected(topo.graph)}")
    print(f"max degree: {repro.max_degree(topo.graph)} (bound 4π/θ = {degree_bound})")
    stretch = repro.energy_stretch(topo.graph, gstar)
    print(f"energy-stretch: max {stretch.max_stretch:.3f}, mean {stretch.mean_stretch:.3f}")

    # 5. Routing: three sustained streams, (T, γ)-balancing.  The
    # balancing algorithm keeps a standing inventory of ≈ T packets per
    # buffer while it works (the space blowup Theorem 3.1 charges for),
    # so the horizon is long enough to amortize that ramp-up.
    scenario = repro.stream_scenario(topo.graph, 3, 1200, rng=1)
    router = repro.BalancingRouter(
        topo.graph.n_nodes,
        scenario.destinations,
        repro.BalancingConfig(threshold=2.0, gamma=0.0, max_height=128),
    )
    engine = repro.SimulationEngine.for_scenario(router, scenario)
    result = engine.run(scenario.duration, drain=scenario.duration)
    st = result.stats
    print(
        f"routing: delivered {st.delivered}/{st.accepted} accepted packets "
        f"({st.throughput:.2f}/step), avg energy/packet {st.average_cost:.4f}"
    )
    print(f"witness (OPT lower bound) delivered {scenario.witness_delivered}")


if __name__ == "__main__":
    main()
