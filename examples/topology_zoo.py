#!/usr/bin/env python
"""Topology zoo: ΘALG against the classical proximity graphs.

Reproduces the §1.2 comparison interactively: build each candidate
topology over the same node set and compare the properties the paper
argues about — degree (scalability), energy-stretch (battery), distance
stretch (latency), connectivity, and interference number (throughput).

ΘALG's N is the only one with O(1) degree *and* O(1) energy-stretch
*and* guaranteed connectivity; every baseline gives up at least one.

Run:  python examples/topology_zoo.py [n]
"""

from __future__ import annotations

import math
import sys

import repro
from repro.analysis.tables import render_table
from repro.interference import interference_number


def main(n: int = 200) -> None:
    pts = repro.uniform_points(n, rng=11)
    d = repro.max_range_for_connectivity(pts, slack=1.5)
    gstar = repro.transmission_graph(pts, d)
    topo = repro.theta_algorithm(pts, math.pi / 9, d)

    zoo = {
        "ThetaALG(N)": topo.graph,
        "Yao(N1)": topo.yao_graph,
        "Gabriel": repro.gabriel_graph(pts, d),
        "RNG": repro.relative_neighborhood_graph(pts, d),
        "RestrictedDelaunay": repro.restricted_delaunay_graph(pts, d),
        "kNN(k=6)": repro.knn_graph(pts, 6, d),
        "EuclideanMST": repro.euclidean_mst(pts),
        "Gstar (no control)": gstar,
    }

    rows = []
    for name, g in zoo.items():
        es = repro.energy_stretch(g, gstar)
        ds = repro.distance_stretch(g, gstar)
        connected = es.disconnected_pairs == 0
        rows.append(
            {
                "topology": name,
                "edges": g.n_edges,
                "max_degree": repro.max_degree(g),
                "connected": connected,
                "energy_stretch": round(es.max_stretch, 3) if connected else float("inf"),
                "distance_stretch": round(ds.max_stretch, 3) if connected else float("inf"),
                "interference": interference_number(g, 0.5),
                "total_cost": round(g.total_cost, 3),
            }
        )
    print(render_table(rows, title=f"Topology zoo over {n} uniform nodes (D = {d:.3f})"))
    print(
        "\nReading guide: ΘALG(N) should match Gabriel-like stretch at a "
        "bounded degree,\nwhile kNN disconnects, MST stretches, and G* "
        "interferes heavily."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
