#!/usr/bin/env python
"""Adversarial routing: the Theorem 3.1 experiment, narrated.

Builds a *witnessed* adversarial workload (sustained streams whose
certified schedule set lower-bounds what any optimal router could do),
derives the (T, γ, H) parameters exactly as Theorem 3.1 prescribes from
the witness's buffer size B, average path length L̄, and average cost
C̄, runs the (T, γ)-balancing algorithm, and prints the measured
(t, s, c)-competitiveness triple next to the theorem's bounds.

Also runs two foils on the same workload:
* γ = 0 (cost-oblivious balancing — the pre-paper state of the art),
* a shortest-path FIFO router (what deployed protocols roughly do).

Run:  python examples/adversarial_routing.py
"""

from __future__ import annotations

import repro
from repro.analysis.routing_experiments import (
    grid_graph,
    run_balancing_on_scenario,
)
from repro.analysis.tables import render_table
from repro.sim.baseline_routers import ShortestPathRouter


def main() -> None:
    graph = grid_graph(6)
    scenario = repro.stream_scenario(graph, 5, 600, rng=3)
    print(
        f"workload: {scenario.name} on {graph.name}; witness delivers "
        f"{scenario.witness_delivered} packets with buffer B = {scenario.witness_buffer}, "
        f"avg path L = {scenario.witness_avg_path_length:.2f}, "
        f"avg cost C = {scenario.witness_avg_cost:.4f}\n"
    )

    rows = []
    for eps in (0.5, 0.25, 0.1):
        report, _ = run_balancing_on_scenario(scenario, epsilon=eps)
        rows.append(
            {
                "algorithm": f"(T,γ)-balancing ε={eps}",
                "throughput_ratio": round(report.throughput_ratio, 3),
                "target (1-ε)": 1 - eps,
                "cost_ratio": round(report.cost_ratio, 3),
                "cost bound (1+2/ε)": 1 + 2 / eps,
                "space_ratio": round(report.space_ratio, 1),
            }
        )

    report0, _ = run_balancing_on_scenario(scenario, epsilon=0.25, gamma_override=0.0)
    rows.append(
        {
            "algorithm": "γ=0 ablation (cost-blind)",
            "throughput_ratio": round(report0.throughput_ratio, 3),
            "target (1-ε)": 0.75,
            "cost_ratio": round(report0.cost_ratio, 3),
            "cost bound (1+2/ε)": float("nan"),
            "space_ratio": round(report0.space_ratio, 1),
        }
    )

    spr = ShortestPathRouter(graph)
    repro.SimulationEngine.for_scenario(spr, scenario).run(
        scenario.duration, drain=scenario.duration
    )
    rows.append(
        {
            "algorithm": "shortest-path FIFO baseline",
            "throughput_ratio": round(spr.stats.delivered / scenario.witness_delivered, 3),
            "target (1-ε)": float("nan"),
            "cost_ratio": round(spr.stats.average_cost / scenario.witness_avg_cost, 3),
            "cost bound (1+2/ε)": float("nan"),
            "space_ratio": float("nan"),
        }
    )

    print(render_table(rows, title="Theorem 3.1 in practice"))
    print(
        "\nNotes: throughput ratios sit slightly below (1-ε) at finite "
        "horizons\n(the theorem's additive slack — packets still ramping up "
        "the gradient);\nthe cost ratio stays far inside the 1+2/ε bound."
    )


if __name__ == "__main__":
    main()
