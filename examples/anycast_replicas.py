#!/usr/bin/env python
"""Anycast to replicated services over a ΘALG topology.

A deployment story for the anycast extension: a service is replicated
at m nodes of an ad-hoc network, clients just address "the service",
and the anycast balancing gradient pulls each packet to the nearest
replica — no name resolution, no replica selection protocol, the same
local rule the paper analyzes.

The demo sweeps the replica count and prints deliveries and energy per
packet for anycast vs the naive alternative (every client pinned to one
fixed replica).

Run:  python examples/anycast_replicas.py
"""

from __future__ import annotations


import repro
from repro.analysis.anycast_experiments import e18_anycast
from repro.analysis.tables import render_table


def main() -> None:
    rows = e18_anycast(n=80, group_sizes=(1, 2, 4, 8), duration=400, rng=7)
    title = "Anycast balancing vs fixed-member unicast (ΘALG topology, 4 client streams)"
    print(render_table(rows, title=title))
    m8 = max(rows, key=lambda r: r["group_size"])
    saving = m8["unicast_avg_cost"] / max(m8["anycast_avg_cost"], 1e-12)
    print(
        f"\nAt {m8['group_size']} replicas anycast spends {saving:.0f}x less "
        "energy per delivered packet:\nthe height gradient automatically "
        "routes every packet to its nearest replica,\nwhile pinned clients "
        "pay full-path energy to a possibly distant one."
    )


if __name__ == "__main__":
    main()
