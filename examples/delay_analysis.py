#!/usr/bin/env python
"""Delay analysis: what the balancing algorithm's buffers cost in latency.

The paper analyzes throughput, space, and energy — not delay.  But the
space blowup of Theorem 3.1 (buffers ≈ O(L̄/ε) · B) has a visible
latency shadow: packets ride a gradient of standing inventory, so
end-to-end delay grows with the threshold T.  This example uses the
packet-identity tracking extension to quantify that, sweeping T on a
fixed stream workload and printing the delay distribution next to
throughput.

Run:  python examples/delay_analysis.py
"""

from __future__ import annotations

import repro
from repro.analysis.routing_experiments import ring_graph
from repro.analysis.tables import render_table
from repro.sim.tracking import TrackedBalancingRouter


def main() -> None:
    graph = ring_graph(16)
    duration = 400
    rows = []
    for threshold in (1.0, 4.0, 16.0):
        scenario = repro.stream_scenario(graph, 3, duration, rng=5)
        router = TrackedBalancingRouter(
            repro.BalancingRouter(
                graph.n_nodes,
                scenario.destinations,
                repro.BalancingConfig(threshold=threshold, gamma=0.0, max_height=256),
            )
        )
        engine = repro.SimulationEngine.for_scenario(router, scenario)
        engine.run(scenario.duration, drain=scenario.duration * 2)
        d = router.delay_summary()
        rows.append(
            {
                "threshold_T": threshold,
                "delivered": router.stats.delivered,
                "witness": scenario.witness_delivered,
                "delay_mean": round(d["mean"], 1),
                "delay_median": round(d["median"], 1),
                "delay_p95": round(d["p95"], 1),
                "delay_max": round(d["max"], 1),
                "leftover": router.total_packets(),
            }
        )
    print(render_table(rows, title="Delay vs threshold T (ring, 3 streams)"))
    print(
        "\nLarger T ⇒ taller standing gradient ⇒ packets queue behind more "
        "inventory:\nthe throughput guarantee is unchanged, the latency "
        "price is visible."
    )


if __name__ == "__main__":
    main()
