"""Setup shim.

The offline environment this project targets ships setuptools but not
the ``wheel`` package, so PEP 660 editable installs fail.  Keeping a
``setup.py`` (and no ``[build-system]`` table in pyproject.toml) lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which works without wheel.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
