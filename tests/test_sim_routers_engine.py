"""Tests for baseline routers, mobility models, and the engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.routing_experiments import ring_graph
from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.graphs.base import GeometricGraph
from repro.sim.adversary import stream_scenario
from repro.sim.baseline_routers import RandomWalkRouter, ShortestPathRouter
from repro.sim.engine import SimulationEngine
from repro.sim.mobility import (
    RandomWalkMobility,
    RandomWaypointMobility,
    StaticMobility,
)


def line_graph(n: int) -> GeometricGraph:
    pts = np.column_stack([np.arange(n, dtype=float), np.zeros(n)])
    return GeometricGraph(pts, [(i, i + 1) for i in range(n - 1)])


class TestShortestPathRouter:
    def test_next_hop_on_line(self):
        r = ShortestPathRouter(line_graph(4))
        assert r.next_hop(0, 3) == 1
        assert r.next_hop(2, 3) == 3
        assert r.next_hop(3, 3) is None

    def test_next_hop_unreachable(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [9.0, 9.0]])
        g = GeometricGraph(pts, [(0, 1)])
        r = ShortestPathRouter(g)
        assert r.next_hop(0, 2) is None

    def test_delivers_on_line(self):
        g = line_graph(4)
        r = ShortestPathRouter(g)
        edges = g.directed_edge_array()
        costs = np.concatenate([g.edge_costs, g.edge_costs])
        r.inject(0, 3, 2)
        for _ in range(12):
            r.run_step(edges, costs)
        assert r.stats.delivered == 2
        assert r.total_packets() == 0

    def test_one_packet_per_edge_per_step(self):
        g = line_graph(2)
        r = ShortestPathRouter(g)
        r.inject(0, 1, 5)
        edges = g.directed_edge_array()
        costs = np.concatenate([g.edge_costs, g.edge_costs])
        r.run_step(edges, costs)
        assert r.stats.delivered == 1

    def test_queue_limit_drops(self):
        g = line_graph(2)
        r = ShortestPathRouter(g, max_queue=3)
        assert r.inject(0, 1, 10) == 3
        assert r.stats.dropped == 7

    def test_waits_when_edge_unavailable(self):
        g = line_graph(3)
        r = ShortestPathRouter(g)
        r.inject(0, 2, 1)
        # Only the second edge is active; packet's next hop (0→1) missing.
        r.run_step(np.array([[1, 2]]), np.array([1.0]))
        assert r.total_packets() == 1
        assert r.stats.delivered == 0


class TestRandomWalkRouter:
    def test_eventually_delivers_on_tiny_graph(self):
        g = line_graph(2)
        r = RandomWalkRouter(g, rng=0)
        edges = g.directed_edge_array()
        costs = np.ones(len(edges))
        r.inject(0, 1, 3)
        for _ in range(100):
            r.run_step(edges, costs)
        assert r.stats.delivered == 3

    def test_conservation(self):
        g = ring_graph(6)
        r = RandomWalkRouter(g, rng=1)
        edges = g.directed_edge_array()
        costs = np.ones(len(edges))
        for i in range(6):
            r.inject(i, (i + 3) % 6, 1)
        for _ in range(50):
            r.run_step(edges, costs)
        assert r.stats.accepted == r.stats.delivered + r.total_packets() + r.stats.dropped - (
            r.stats.injected - r.stats.accepted
        )


class TestMobility:
    def test_static_never_moves(self):
        pts = np.random.default_rng(0).random((10, 2))
        m = StaticMobility(pts)
        p0 = m.positions(0).copy()
        m.advance()
        assert np.array_equal(m.positions(5), p0)

    def test_random_walk_stays_in_domain(self):
        pts = np.random.default_rng(1).random((20, 2))
        m = RandomWalkMobility(pts, step_sigma=0.3, side=1.0, rng=2)
        for _ in range(50):
            p = m.advance()
            assert (p >= 0).all() and (p <= 1).all()

    def test_random_walk_moves(self):
        pts = np.zeros((5, 2)) + 0.5
        m = RandomWalkMobility(pts, step_sigma=0.05, rng=3)
        p0 = m.positions(0).copy()
        m.advance()
        assert not np.allclose(m.positions(1), p0)

    def test_waypoint_step_length_bounded(self):
        pts = np.random.default_rng(4).random((15, 2))
        m = RandomWaypointMobility(pts, speed=0.07, rng=5)
        prev = m.positions(0).copy()
        for _ in range(30):
            cur = m.advance()
            step = np.hypot(*(cur - prev).T)
            assert (step <= 0.07 + 1e-9).all()
            assert (cur >= 0).all() and (cur <= 1).all()
            prev = cur.copy()

    def test_waypoint_reaches_targets(self):
        pts = np.zeros((3, 2))
        m = RandomWaypointMobility(pts, speed=0.5, side=1.0, rng=6)
        for _ in range(200):
            m.advance()
        # After many steps nodes have moved well away from the origin corner.
        assert m.positions(0).mean() > 0.1

    def test_parameter_validation(self):
        pts = np.zeros((2, 2))
        with pytest.raises(ValueError):
            RandomWalkMobility(pts, step_sigma=-1.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(pts, speed=0.0)

    def test_all_models_return_read_only_views(self):
        pts = np.random.default_rng(9).random((8, 2))
        for m in (
            StaticMobility(pts),
            RandomWalkMobility(pts, step_sigma=0.01, rng=0),
            RandomWaypointMobility(pts, speed=0.05, rng=1),
        ):
            for arr in (m.positions(0), m.advance()):
                assert not arr.flags.writeable
                with pytest.raises(ValueError):
                    arr += 1.0


class TestEngine:
    def test_runs_scenario(self):
        g = ring_graph(10)
        scen = stream_scenario(g, 2, 40, rng=0)
        router = BalancingRouter(
            g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 64)
        )
        engine = SimulationEngine.for_scenario(router, scen)
        result = engine.run(scen.duration, drain=scen.duration)
        assert result.steps == 2 * scen.duration
        assert result.stats.delivered > 0
        assert result.leftover == router.total_packets()

    def test_drain_has_no_injections(self):
        g = ring_graph(8)
        scen = stream_scenario(g, 1, 10, rng=1)
        router = BalancingRouter(
            g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 64)
        )
        engine = SimulationEngine.for_scenario(router, scen)
        result = engine.run(10, drain=10)
        # Injections only during the first 10 steps: 1/step.
        assert result.stats.injected == 10

    def test_negative_duration_rejected(self):
        g = ring_graph(8)
        scen = stream_scenario(g, 1, 10, rng=2)
        router = BalancingRouter(g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 8))
        engine = SimulationEngine.for_scenario(router, scen)
        with pytest.raises(ValueError):
            engine.run(-1)

    def test_success_fn_blocks_all(self):
        g = ring_graph(8)
        scen = stream_scenario(g, 1, 10, rng=3)
        router = BalancingRouter(g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 64))
        engine = SimulationEngine.for_scenario(
            router, scen, success_fn=lambda txs: [False] * len(txs)
        )
        result = engine.run(10, drain=5)
        assert result.stats.delivered == 0
        assert result.stats.interference_failures == result.stats.attempts
