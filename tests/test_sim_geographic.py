"""Tests for greedy geographic routing."""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro.graphs.base import GeometricGraph
from repro.sim.geographic import GreedyGeographicRouter, greedy_geographic_path


@pytest.fixture(scope="module")
def dense_world():
    pts = repro.uniform_points(80, rng=9)
    d = repro.max_range_for_connectivity(pts, slack=1.5)
    return pts, repro.transmission_graph(pts, d), repro.theta_algorithm(pts, math.pi / 9, d)


def cul_de_sac_graph() -> GeometricGraph:
    """A layout with a guaranteed local minimum: the destination sits
    behind a gap; node 1 is closer to it than either neighbor."""
    pts = np.array(
        [
            [0.0, 0.0],  # 0 source
            [1.0, 0.0],  # 1 dead-end tip (closest to dest among connected)
            [0.0, 1.0],  # 2 detour
            [1.2, 1.0],  # 3 destination-side relay
            [2.0, 0.0],  # 4 destination
        ]
    )
    edges = [(0, 1), (0, 2), (2, 3), (3, 4)]
    return GeometricGraph(pts, edges)


class TestOfflinePath:
    def test_delivers_on_dense_graph(self, dense_world):
        _, gstar, _ = dense_world
        path, ok = greedy_geographic_path(gstar, 0, 42)
        assert ok
        assert path[0] == 0 and path[-1] == 42

    def test_progress_strictly_decreases(self, dense_world):
        pts, gstar, _ = dense_world
        path, ok = greedy_geographic_path(gstar, 3, 57)
        d = [float(np.hypot(*(pts[v] - pts[57]))) for v in path]
        assert all(a > b for a, b in zip(d[:-1], d[1:]))

    def test_local_minimum_detected(self):
        g = cul_de_sac_graph()
        path, ok = greedy_geographic_path(g, 0, 4)
        assert not ok
        assert path == [0, 1]  # greedy walks into the dead end

    def test_src_equals_dst(self, dense_world):
        _, gstar, _ = dense_world
        path, ok = greedy_geographic_path(gstar, 5, 5)
        assert ok and path == [5]

    def test_isolated_node(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        g = GeometricGraph(pts, [])
        path, ok = greedy_geographic_path(g, 0, 1)
        assert not ok


class TestRouter:
    def test_delivers_online(self, dense_world):
        _, gstar, _ = dense_world
        r = GreedyGeographicRouter(gstar)
        edges = gstar.directed_edge_array()
        costs = np.concatenate([gstar.edge_costs, gstar.edge_costs])
        r.inject(0, 42, 3)
        for _ in range(40):
            r.run_step(edges, costs)
        assert r.stats.delivered == 3

    def test_minimum_drop_counted(self):
        g = cul_de_sac_graph()
        r = GreedyGeographicRouter(g)
        edges = g.directed_edge_array()
        costs = np.concatenate([g.edge_costs, g.edge_costs])
        r.inject(0, 4, 1)
        for _ in range(10):
            r.run_step(edges, costs)
        assert r.stats.delivered == 0
        assert r.local_minimum_drops >= 1

    def test_injection_at_minimum_rejected(self):
        g = cul_de_sac_graph()
        r = GreedyGeographicRouter(g)
        accepted = r.inject(1, 4, 1)  # node 1 is the local minimum
        assert accepted == 0
        assert r.local_minimum_drops == 1

    def test_sparser_graph_more_minima(self, dense_world):
        """ΘALG's sparse N strands more greedy packets than G* — the
        classic tension between sparsification and greedy routing."""
        pts, gstar, topo = dense_world
        gen = np.random.default_rng(0)
        pairs = [tuple(gen.choice(len(pts), 2, replace=False)) for _ in range(200)]
        ok_dense = sum(greedy_geographic_path(gstar, int(s), int(d))[1] for s, d in pairs)
        ok_sparse = sum(
            greedy_geographic_path(topo.graph, int(s), int(d))[1] for s, d in pairs
        )
        assert ok_dense >= ok_sparse

    def test_gabriel_greedy_friendliness(self, dense_world):
        """Gabriel graphs keep greedy delivery comparatively high — the
        reason geographic protocols planarize with them."""
        pts, gstar, _ = dense_world
        gabriel = repro.gabriel_graph(pts, max_range=np.inf)
        gen = np.random.default_rng(1)
        pairs = [tuple(gen.choice(len(pts), 2, replace=False)) for _ in range(150)]
        ok = sum(greedy_geographic_path(gabriel, int(s), int(d))[1] for s, d in pairs)
        assert ok / len(pairs) > 0.5
