"""Shared-memory lifecycle: deterministic cleanup, crash containment.

The contract under test: every segment a :class:`ShmArena` allocates is
unlinked exactly once by its owning process — on normal close, on pool
teardown, and on the worker-crash path (a SIGKILLed worker mid-batch
must leave no ``/dev/shm`` entries behind and surface a clear
:class:`WorkerCrashError`).
"""

import math
import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro import (
    IncrementalTheta,
    NodeMove,
    max_range_for_connectivity,
    uniform_points,
)
from repro.parallel import ShmArena, TileWorkerPool, WorkerCrashError, attach

THETA = math.pi / 9


def _segment_exists(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


class TestArena:
    def test_share_attach_round_trip(self):
        src = np.arange(12, dtype=np.float64).reshape(6, 2)
        with ShmArena() as arena:
            view = arena.share(src)
            handle = arena.handle(view)
            attached, seg = attach(handle)
            assert np.array_equal(attached, src)
            attached[0, 0] = 99.0
            assert view[0, 0] == 99.0  # same physical pages
            seg.close()

    def test_close_unlinks_and_is_idempotent(self):
        arena = ShmArena()
        arena.empty((4,), np.int64)
        names = list(arena.names)
        assert all(_segment_exists(n) for n in names)
        arena.close()
        arena.close()
        assert arena.names == []
        assert not any(_segment_exists(n) for n in names)
        with pytest.raises(RuntimeError, match="closed"):
            arena.empty((2,), np.int64)

    def test_foreign_array_has_no_handle(self):
        with ShmArena() as arena:
            with pytest.raises(KeyError, match="not allocated"):
                arena.handle(np.zeros(3))

    def test_handle_is_picklable(self):
        import pickle

        with ShmArena() as arena:
            h = arena.handle(arena.empty((3, 2), np.float64))
            h2 = pickle.loads(pickle.dumps(h))
            assert h2 == h and h2.nbytes() == 48

    def test_allocation_failure_reports_budget_and_owner(self, monkeypatch):
        from repro.parallel import shm as shm_mod

        arena = ShmArena()
        arena.empty((8,), np.float64)  # 64 pinned bytes show in the error

        def refuse(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(shm_mod.shared_memory, "SharedMemory", refuse)
        with pytest.raises(OSError) as excinfo:
            arena.empty((1024, 2), np.float64)
        msg = str(excinfo.value)
        assert "16,384 bytes" in msg  # requested
        assert "(1024, 2)" in msg and "<f8" in msg
        assert f"owner pid {os.getpid()}" in msg
        assert "already pins 64 bytes across 1 segments" in msg
        assert "share_dtype" in msg  # remediation hint
        monkeypatch.undo()
        arena.close()

    def test_available_bytes_reports_dev_shm(self):
        free = ShmArena.available_bytes()
        assert free is None or free >= 0


class TestPoolLifecycle:
    def _pool(self, *, workers=2):
        pts = uniform_points(60, rng=9)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        pool = TileWorkerPool(inc, workers=workers, capacity=inc.size + 16)
        return inc, pool

    def test_close_unlinks_segments_and_restores_index(self):
        inc, pool = self._pool()
        names = list(pool._arena.names)
        assert names and all(_segment_exists(n) for n in names)
        assert inc._index._shared
        pool.close()
        assert not any(_segment_exists(n) for n in names)
        assert not inc._index._shared
        # the index survives close with private buffers — still usable
        assert len(inc.alive_ids()) == 60

    def test_sigkilled_worker_raises_and_unlinks(self):
        inc, pool = self._pool(workers=2)
        names = list(pool._arena.names)
        victim = pool._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)
        node = int(inc.alive_ids()[0])
        x, y = (float(v) for v in inc._index.position(node))
        with pytest.raises(WorkerCrashError, match="died with exit code") as excinfo:
            pool.apply_batch([NodeMove(node=node, x=x + 1e-3, y=y)])
        # the error carries the victim's last telemetry snapshot (shipped
        # with the startup handshake before the SIGKILL landed)
        err = excinfo.value
        assert err.telemetry is not None
        assert err.telemetry["rss_bytes"] > 0
        assert err.telemetry["batch"] == 0  # died before its first batch
        assert "last telemetry" in str(err)
        assert "rss=" in str(err) and "batch=0" in str(err)
        # the crash path closed the pool and unlinked everything
        assert pool._closed
        assert not any(_segment_exists(n) for n in names)
        with pytest.raises(RuntimeError, match="closed"):
            pool.apply_batch([])

    def test_crash_teardown_survives_double_unlink_and_rebuild(self):
        # The crash path unlinks everything; later close() calls (atexit,
        # __del__, context exit) must be no-ops, and the survivor state
        # must accept a brand-new pool.
        inc, pool = self._pool(workers=2)
        os.kill(pool._procs[1].pid, signal.SIGKILL)
        pool._procs[1].join(timeout=5.0)
        node = int(inc.alive_ids()[0])
        x, y = (float(v) for v in inc._index.position(node))
        with pytest.raises(WorkerCrashError):
            pool.apply_batch([NodeMove(node=node, x=x + 1e-3, y=y)])
        pool.close()  # second teardown after the crash path: strict no-op
        pool._arena.close()
        assert pool._arena.names == []
        with TileWorkerPool(inc, workers=2, capacity=inc.size + 16) as fresh:
            assert fresh.apply_batch([]).events == 0

    def test_capacity_ceiling_is_a_clear_error(self):
        from repro import NodeJoin

        inc, pool = self._pool(workers=1)
        base = inc.size
        joins = [
            NodeJoin(node=base + i, x=0.3 + 0.01 * i, y=0.4)
            for i in range(20)  # capacity headroom is 16: the 17th overflows
        ]
        with pool:
            with pytest.raises(RuntimeError, match="shared-buffer capacity"):
                pool.apply_batch(joins)
