"""Smoke + invariant tests for the E5b full-schedule simulation."""

from __future__ import annotations

import pytest

from repro.analysis.topology_experiments import e5b_full_simulation


class TestE5b:
    @pytest.fixture(scope="class")
    def rows(self):
        return e5b_full_simulation(ns=(40,), rng=0)

    def test_columns(self, rows):
        assert set(rows[0]) >= {
            "n",
            "gstar_rounds",
            "n_slots_on_N",
            "slowdown",
            "interference_I",
        }

    def test_slowdown_at_least_one_ish(self, rows):
        """Simulating on a sparser graph cannot be faster than ~the
        original schedule divided by path sharing."""
        for r in rows:
            assert r["n_slots_on_N"] > 0
            assert r["slowdown"] > 0.2

    def test_slowdown_within_theorem_envelope(self, rows):
        for r in rows:
            assert r["slowdown"] <= r["interference_I"] + 1

    def test_deterministic(self):
        a = e5b_full_simulation(ns=(40,), rng=0)
        b = e5b_full_simulation(ns=(40,), rng=0)
        assert a == b
