"""Tests for the uniform-grid spatial index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.spatialindex import GridIndex

coords = st.floats(0, 10, allow_nan=False)
point_sets = arrays(np.float64, st.tuples(st.integers(1, 40), st.just(2)), elements=coords)


def brute_radius(pts: np.ndarray, center: np.ndarray, r: float) -> np.ndarray:
    d = pts - center
    return np.sort(np.nonzero(d[:, 0] ** 2 + d[:, 1] ** 2 <= r * r + 1e-12)[0])


class TestQueryRadius:
    def test_empty_set(self):
        idx = GridIndex(np.empty((0, 2)), cell=1.0)
        assert len(idx.query_radius([0, 0], 1.0)) == 0

    def test_simple_hit(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [2.0, 0.0]])
        idx = GridIndex(pts, cell=1.0)
        assert idx.query_radius([0, 0], 1.0).tolist() == [0, 1]

    def test_exclude_self(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0]])
        idx = GridIndex(pts, cell=1.0)
        assert idx.query_radius(pts[0], 1.0, exclude=0).tolist() == [1]

    def test_inclusive_boundary(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        idx = GridIndex(pts, cell=1.0)
        assert 1 in idx.query_radius([0, 0], 1.0)

    def test_radius_larger_than_cell(self):
        """Query radius may exceed the grid cell size."""
        pts = np.random.default_rng(0).uniform(0, 10, (100, 2))
        idx = GridIndex(pts, cell=0.5)
        got = idx.query_radius([5.0, 5.0], 3.0)
        assert np.array_equal(got, brute_radius(pts, np.array([5.0, 5.0]), 3.0))

    @given(point_sets, st.floats(0.1, 5.0), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce(self, pts, r, qi):
        idx = GridIndex(pts, cell=max(r, 0.25))
        center = pts[qi % len(pts)]
        got = idx.query_radius(center, r)
        assert np.array_equal(got, brute_radius(pts, center, r))

    def test_rejects_bad_cell(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((1, 2)), cell=0.0)

    def test_points_readonly(self):
        idx = GridIndex(np.zeros((2, 2)), cell=1.0)
        with pytest.raises(ValueError):
            idx.points[0, 0] = 5.0


class TestAllPairs:
    def test_known_pairs(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [3.0, 0.0]])
        idx = GridIndex(pts, cell=1.0)
        pairs = idx.all_pairs_within(1.0)
        assert pairs.tolist() == [[0, 1]]

    def test_canonical_order(self):
        pts = np.random.default_rng(2).uniform(0, 3, (30, 2))
        pairs = GridIndex(pts, cell=0.7).all_pairs_within(0.7)
        assert (pairs[:, 0] < pairs[:, 1]).all()

    @given(point_sets, st.floats(0.2, 4.0))
    @settings(max_examples=30, deadline=None)
    def test_pairs_match_bruteforce(self, pts, r):
        idx = GridIndex(pts, cell=r)
        got = {tuple(p) for p in idx.all_pairs_within(r)}
        want = set()
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                if np.hypot(*(pts[i] - pts[j])) <= r + 1e-12:
                    want.add((i, j))
        assert got == want

    def test_empty_result_shape(self):
        pts = np.array([[0.0, 0.0], [9.0, 9.0]])
        pairs = GridIndex(pts, cell=1.0).all_pairs_within(1.0)
        assert pairs.shape == (0, 2)


class TestQueryRadiusMany:
    def test_matches_single_queries(self):
        pts = np.random.default_rng(5).uniform(0, 10, (120, 2))
        idx = GridIndex(pts, cell=1.0)
        centers = pts[::7]
        indptr, indices = idx.query_radius_many(centers, 1.7)
        assert len(indptr) == len(centers) + 1
        for q, c in enumerate(centers):
            got = indices[indptr[q] : indptr[q + 1]]
            assert np.array_equal(got, idx.query_radius(c, 1.7))

    def test_off_grid_centers(self):
        pts = np.random.default_rng(6).uniform(0, 4, (50, 2))
        idx = GridIndex(pts, cell=0.5)
        centers = np.array([[-3.0, -3.0], [2.0, 2.0], [99.0, 99.0]])
        indptr, indices = idx.query_radius_many(centers, 0.9)
        assert np.array_equal(
            indices[indptr[1] : indptr[2]], idx.query_radius(centers[1], 0.9)
        )
        assert indptr[1] - indptr[0] == 0  # far outside the grid
        assert indptr[3] - indptr[2] == 0

    def test_empty_centers(self):
        idx = GridIndex(np.zeros((3, 2)), cell=1.0)
        indptr, indices = idx.query_radius_many(np.empty((0, 2)), 1.0)
        assert indptr.tolist() == [0]
        assert len(indices) == 0

    def test_empty_index(self):
        idx = GridIndex(np.empty((0, 2)), cell=1.0)
        indptr, indices = idx.query_radius_many(np.array([[0.0, 0.0]]), 1.0)
        assert indptr.tolist() == [0, 0]
        assert len(indices) == 0

    def test_radius_exceeds_cell(self):
        pts = np.random.default_rng(7).uniform(0, 10, (100, 2))
        idx = GridIndex(pts, cell=0.4)
        centers = pts[:10]
        indptr, indices = idx.query_radius_many(centers, 2.5)
        for q, c in enumerate(centers):
            got = indices[indptr[q] : indptr[q + 1]]
            assert np.array_equal(got, idx.query_radius(c, 2.5))
