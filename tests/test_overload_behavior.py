"""Overload and admission-control behaviour (the drop half of §3.2)."""

from __future__ import annotations

import numpy as np

from repro.analysis.routing_experiments import ring_graph
from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.sim.adversary import flood_scenario, stream_scenario
from repro.sim.engine import SimulationEngine


class TestFloodAdmission:
    def test_flood_causes_drops_but_core_survives(self):
        """Under a 4× flood the router drops at the sources yet still
        delivers a solid fraction of the witnessed core load."""
        g = ring_graph(12)
        scen = flood_scenario(g, 20, 10.0, rng=0)
        # H = 2 makes the flood bounce off the buffers; T = 0.5 (below
        # integer granularity 1) still lets single-packet gradients move.
        router = BalancingRouter(
            g.n_nodes, scen.destinations, BalancingConfig(0.5, 0.0, 2)
        )
        engine = SimulationEngine.for_scenario(router, scen)
        engine.run(scen.duration * 4, drain=scen.duration * 20)
        st = router.stats
        assert st.dropped > 0  # admission control kicked in
        assert st.delivered > 0
        # Conservation with drops: accepted == delivered + buffered.
        assert st.accepted == st.delivered + router.total_packets()

    def test_tiny_buffers_drop_more(self):
        g = ring_graph(12)
        drops = {}
        for H in (2, 64):
            scen = flood_scenario(g, 20, 4.0, rng=1)
            router = BalancingRouter(
                g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, H)
            )
            SimulationEngine.for_scenario(router, scen).run(
                scen.duration * 2, drain=scen.duration * 4
            )
            drops[H] = router.stats.dropped
        assert drops[2] >= drops[64]

    def test_only_new_packets_dropped(self):
        """Packets already accepted are never deleted — only injections
        bounce off full buffers (the paper's admission-control remark)."""
        g = ring_graph(8)
        scen = stream_scenario(g, 2, 100, rng=2)
        router = BalancingRouter(
            g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 4)
        )
        engine = SimulationEngine.for_scenario(router, scen)
        accepted_so_far = 0
        for t in range(100):
            edges, costs = scen.active_edges(t)
            router.run_step(edges, costs, list(scen.injections(t)))
            # Invariant: accepted never decreases and in-network count
            # equals accepted - delivered at every step.
            st = router.stats
            assert st.accepted >= accepted_so_far
            accepted_so_far = st.accepted
            assert router.total_packets() == st.accepted - st.delivered

    def test_heights_never_exceed_cap_from_injection(self):
        g = ring_graph(8)
        router = BalancingRouter(g.n_nodes, [0], BalancingConfig(1.0, 0.0, 5))
        for _ in range(20):
            router.inject(3, 0, 3)
        assert router.height(3, 0) == 5

    def test_transit_can_exceed_injection_cap_bounded_by_degree(self):
        """Arrivals (unlike injections) are never refused; with the
        theorem's T they stay bounded, but the model itself lets a
        buffer exceed H transiently by at most the in-degree."""
        # Star: 4 sources push to center toward dest 5 chained behind it.
        pts = np.array(
            [[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0], [0.0, 0.0], [0.5, 0.5]]
        )
        from repro.graphs.base import GeometricGraph

        g = GeometricGraph(pts, [(0, 4), (1, 4), (2, 4), (3, 4), (4, 5)])
        router = BalancingRouter(6, [5], BalancingConfig(0.0, 0.0, 4))
        edges = g.directed_edge_array()
        costs = np.concatenate([g.edge_costs, g.edge_costs])
        for i in range(4):
            router.inject(i, 5, 4)
        for _ in range(30):
            router.run_step(edges, costs)
            assert router.height(4, 5) <= 4 + 4  # H + in-degree headroom
        assert router.stats.delivered > 0
