"""Tests for the global-ranking spanner baselines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.pointsets import uniform_points
from repro.graphs.metrics import distance_stretch, is_connected
from repro.graphs.sparsify import global_yao_sparsification, greedy_spanner
from repro.graphs.transmission import max_range_for_connectivity, transmission_graph
from repro.graphs.yao import yao_graph


@pytest.fixture(scope="module")
def dense_world():
    pts = uniform_points(60, rng=3)
    d = max_range_for_connectivity(pts, slack=2.0)
    return pts, d, transmission_graph(pts, d)


class TestGreedySpanner:
    def test_is_subgraph(self, dense_world):
        _, _, g = dense_world
        sp = greedy_spanner(g, 1.5)
        for i, j in sp.edges:
            assert g.has_edge(int(i), int(j))

    def test_stretch_guarantee(self, dense_world):
        _, _, g = dense_world
        t = 1.5
        sp = greedy_spanner(g, t)
        ds = distance_stretch(sp, g)
        assert ds.disconnected_pairs == 0
        assert ds.max_stretch <= t + 1e-9

    def test_sparser_than_input(self, dense_world):
        _, _, g = dense_world
        sp = greedy_spanner(g, 2.0)
        assert sp.n_edges < g.n_edges

    def test_t1_keeps_structure(self):
        """t=1 keeps every edge that is the unique shortest connection."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 0.9]])
        g = transmission_graph(pts, 3.0)
        sp = greedy_spanner(g, 1.0)
        assert is_connected(sp)

    def test_bad_factor(self, dense_world):
        _, _, g = dense_world
        with pytest.raises(ValueError):
            greedy_spanner(g, 0.9)


class TestGlobalYaoSparsification:
    def test_connected_and_spanner(self, dense_world):
        pts, d, gstar = dense_world
        y = yao_graph(pts, math.pi / 6, d)
        sparse = global_yao_sparsification(y, 2.0)
        assert is_connected(sparse)
        ds = distance_stretch(sparse, y)
        assert ds.max_stretch <= 2.0 + 1e-9

    def test_removes_edges(self, dense_world):
        pts, d, _ = dense_world
        y = yao_graph(pts, math.pi / 6, d)
        sparse = global_yao_sparsification(y, 3.0)
        assert sparse.n_edges <= y.n_edges

    def test_comparable_quality_to_thetaalg(self, dense_world):
        """The global baseline and ΘALG trade the same quality — the
        paper's point is locality, not quality."""
        from repro.core.theta import theta_algorithm
        from repro.graphs.metrics import energy_stretch

        pts, d, gstar = dense_world
        y = yao_graph(pts, math.pi / 9, d)
        sparse = global_yao_sparsification(y, 2.0)
        topo = theta_algorithm(pts, math.pi / 9, d)
        es_global = energy_stretch(sparse, gstar)
        es_theta = energy_stretch(topo.graph, gstar)
        assert es_global.max_stretch < 4.0
        assert es_theta.max_stretch < 4.0

    def test_bad_factor(self, dense_world):
        pts, d, _ = dense_world
        y = yao_graph(pts, math.pi / 6, d)
        with pytest.raises(ValueError):
            global_yao_sparsification(y, 0.5)
