"""Cross-module integration tests: the full paper stack end to end."""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro.analysis.routing_experiments import (
    ring_graph,
    run_balancing_on_scenario,
)
from repro.core.interference_mac import RandomActivationMAC
from repro.core.theta_paths import path_congestion, replace_schedule_edges
from repro.sim.adversary import stream_scenario
from repro.sim.engine import SimulationEngine


@pytest.fixture(scope="module")
def world():
    pts = repro.uniform_points(70, rng=42)
    d = repro.max_range_for_connectivity(pts, slack=1.5)
    gstar = repro.transmission_graph(pts, d)
    topo = repro.theta_algorithm(pts, math.pi / 9, d)
    return pts, d, gstar, topo


class TestTheorem31Integration:
    """Theorem 3.1 bounds measured on a witnessed stream workload."""

    def test_throughput_cost_space_within_bounds(self):
        scen = stream_scenario(ring_graph(16), 3, 600, rng=0)
        eps = 0.25
        report, router = run_balancing_on_scenario(scen, epsilon=eps, drain_factor=1.0)
        # Throughput: within (1-ε) minus the finite-horizon ramp.
        assert report.throughput_ratio >= (1 - eps) - 0.15
        # Cost: within the theorem's 1 + 2/ε factor (with a lot of room).
        assert report.cost_ratio <= 1 + 2 / eps
        # Space: within the theorem's blowup bound.
        from repro.core.competitive import theorem31_parameters
        from repro.graphs.metrics import max_degree

        params = theorem31_parameters(
            opt_buffer=scen.witness_buffer,
            avg_path_length=scen.witness_avg_path_length,
            avg_cost=scen.witness_avg_cost,
            epsilon=eps,
            delta_frequencies=max_degree(scen.graph),
        )
        assert report.max_height_online <= params["max_height"]

    def test_longer_horizon_improves_ratio(self):
        short = stream_scenario(ring_graph(16), 3, 150, rng=1)
        long = stream_scenario(ring_graph(16), 3, 900, rng=1)
        r_short, _ = run_balancing_on_scenario(short, epsilon=0.25)
        r_long, _ = run_balancing_on_scenario(long, epsilon=0.25)
        assert r_long.throughput_ratio >= r_short.throughput_ratio - 0.02


class TestTheorem33Integration:
    def test_tgi_beats_floor_on_theta_topology(self, world):
        pts, d, gstar, topo = world
        graph = topo.graph
        scen = stream_scenario(graph, 3, 1500, rng=2)
        mac = RandomActivationMAC(graph, 0.5, rng=3)
        from repro.core.balancing import BalancingConfig, BalancingRouter
        from repro.core.competitive import theorem33_parameters

        big_i = max(1, mac.interference_number)
        params = theorem33_parameters(
            opt_buffer=scen.witness_buffer,
            avg_path_length=scen.witness_avg_path_length,
            avg_cost=scen.witness_avg_cost,
            epsilon=0.25,
            interference_bound=big_i,
        )
        router = BalancingRouter(
            graph.n_nodes,
            scen.destinations,
            BalancingConfig(params["threshold"], params["gamma"], int(params["max_height"])),
        )
        engine = SimulationEngine(
            router,
            lambda t: mac.active_edges(),
            scen.injections,
            success_fn=mac.success_mask,
        )
        engine.run(scen.duration, drain=scen.duration * 3)
        ratio = router.stats.delivered / scen.witness_delivered
        assert ratio >= params["target_fraction"]

    def test_failed_transmissions_conserve_packets(self, world):
        _, _, _, topo = world
        graph = topo.graph
        scen = stream_scenario(graph, 2, 200, rng=4)
        mac = RandomActivationMAC(graph, 0.5, rng=5)
        from repro.core.balancing import BalancingConfig, BalancingRouter

        router = BalancingRouter(
            graph.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 128)
        )
        engine = SimulationEngine(
            router,
            lambda t: mac.active_edges(),
            scen.injections,
            success_fn=mac.success_mask,
        )
        engine.run(scen.duration, drain=100)
        st = router.stats
        assert st.accepted == st.delivered + router.total_packets()


class TestTheorem28Integration:
    def test_gstar_schedule_simulated_on_n(self, world):
        """A whole greedy non-interfering schedule of G* maps to N with
        bounded per-step congestion — the constructive core of Thm 2.8."""
        pts, d, gstar, topo = world
        from repro.interference.conflict import greedy_interference_schedule

        rounds = greedy_interference_schedule(gstar, 0.5)
        worst = 0
        for r in rounds[:10]:
            paths = replace_schedule_edges(topo, gstar.edges[r])
            cong = path_congestion(topo, paths)
            worst = max(worst, max(cong.values(), default=0))
        assert worst <= 6

    def test_greedy_rounds_bounded_by_interference(self, world):
        pts, d, gstar, topo = world
        from repro.interference.conflict import (
            greedy_interference_schedule,
            interference_number,
        )

        rounds = greedy_interference_schedule(topo.graph, 0.5)
        assert len(rounds) <= interference_number(topo.graph, 0.5) + 1


class TestMobilityIntegration:
    def test_balancing_survives_topology_churn(self):
        """Rebuild the ΘALG topology as nodes move; the router keeps
        delivering without invariant violations (the adversarial-model
        point: the router never needs to know why edges changed)."""
        from repro.core.balancing import BalancingConfig, BalancingRouter
        from repro.sim.mobility import RandomWalkMobility

        pts0 = repro.uniform_points(35, rng=6)
        mob = RandomWalkMobility(pts0, step_sigma=0.005, rng=7)
        n = len(pts0)
        dests = [0, 1, 2]
        router = BalancingRouter(n, dests, BalancingConfig(1.0, 0.0, 64))
        gen = np.random.default_rng(8)
        for t in range(150):
            pts = mob.advance()
            d = repro.max_range_for_connectivity(pts, slack=1.5)
            topo = repro.theta_algorithm(pts, math.pi / 6, d)
            g = topo.graph
            edges = g.directed_edge_array()
            costs = np.concatenate([g.edge_costs, g.edge_costs])
            injections = []
            if t < 100:
                s = int(gen.integers(3, n))
                injections.append((s, int(gen.choice(dests)), 1))
            router.run_step(edges, costs, injections)
            assert (router.heights >= 0).all()
        assert router.stats.delivered > 0
        assert router.stats.accepted == router.stats.delivered + router.total_packets()
