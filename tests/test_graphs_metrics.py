"""Tests for degree/connectivity/stretch metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.base import GeometricGraph
from repro.graphs.metrics import (
    connected_components,
    degrees,
    distance_stretch,
    energy_stretch,
    is_connected,
    max_degree,
    shortest_path_costs,
    stretch_summary,
)


@pytest.fixture
def path4() -> GeometricGraph:
    pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
    return GeometricGraph(pts, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def square_with_diagonal() -> tuple[GeometricGraph, GeometricGraph]:
    """Reference: square + diagonal; subgraph: square only."""
    pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
    ref = GeometricGraph(pts, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    sub = GeometricGraph(pts, [(0, 1), (1, 2), (2, 3), (3, 0)])
    return sub, ref


class TestDegrees:
    def test_path_degrees(self, path4):
        assert degrees(path4).tolist() == [1, 2, 2, 1]
        assert max_degree(path4) == 2

    def test_empty(self):
        g = GeometricGraph(np.zeros((0, 2)), [])
        assert max_degree(g) == 0
        assert degrees(g).tolist() == []


class TestConnectivity:
    def test_connected_path(self, path4):
        assert is_connected(path4)

    def test_disconnected(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
        g = GeometricGraph(pts, [(0, 1)])
        assert not is_connected(g)
        n, labels = connected_components(g)
        assert n == 2
        assert labels[0] == labels[1] != labels[2]

    def test_single_node_connected(self):
        g = GeometricGraph(np.zeros((1, 2)), [])
        assert is_connected(g)

    def test_empty_graph(self):
        g = GeometricGraph(np.zeros((0, 2)), [])
        assert is_connected(g)


class TestShortestPaths:
    def test_length_weights(self, path4):
        d = shortest_path_costs(path4, weight="length")
        assert d[0, 3] == pytest.approx(3.0)

    def test_cost_weights(self, path4):
        # Each unit hop costs 1^2; 3 hops cost 3 (vs |uv|^2 = 9 direct).
        d = shortest_path_costs(path4, weight="cost")
        assert d[0, 3] == pytest.approx(3.0)

    def test_unreachable_inf(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [9.0, 9.0]])
        g = GeometricGraph(pts, [(0, 1)])
        d = shortest_path_costs(g)
        assert np.isinf(d[0, 2])

    def test_selected_sources(self, path4):
        d = shortest_path_costs(path4, sources=np.array([1]))
        assert d.shape == (1, 4)
        assert d[0, 3] == pytest.approx(2.0)

    def test_bad_weight(self, path4):
        with pytest.raises(ValueError):
            shortest_path_costs(path4, weight="hops")


class TestStretch:
    def test_identical_graph_stretch_one(self, path4):
        es = energy_stretch(path4, path4)
        assert es.max_stretch == pytest.approx(1.0)
        assert es.mean_stretch == pytest.approx(1.0)
        assert es.disconnected_pairs == 0

    def test_square_distance_stretch(self, square_with_diagonal):
        sub, ref = square_with_diagonal
        ds = distance_stretch(sub, ref)
        # 0-2 via two sides: 2 vs √2 direct.
        assert ds.max_stretch == pytest.approx(np.sqrt(2.0))

    def test_square_energy_stretch(self, square_with_diagonal):
        sub, ref = square_with_diagonal
        es = energy_stretch(sub, ref)
        # 0-2 energy: two unit edges = 2 vs diagonal (√2)² = 2 → stretch 1.
        assert es.max_stretch == pytest.approx(1.0)

    def test_edge_stretch_covers_reference_edges(self, square_with_diagonal):
        sub, ref = square_with_diagonal
        es = energy_stretch(sub, ref)
        assert es.max_edge_stretch == pytest.approx(1.0)

    def test_disconnected_pairs_counted(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        ref = GeometricGraph(pts, [(0, 1), (1, 2)])
        sub = GeometricGraph(pts, [(0, 1)])
        es = energy_stretch(sub, ref)
        assert es.disconnected_pairs > 0

    def test_node_set_mismatch_rejected(self, path4):
        other = GeometricGraph(np.zeros((2, 2)) + [[0, 0], [1, 1]], [(0, 1)])
        with pytest.raises(ValueError):
            energy_stretch(path4, other)

    def test_sampled_sources(self):
        pts = np.random.default_rng(0).random((40, 2))
        from repro.graphs.transmission import transmission_graph

        ref = transmission_graph(pts, 0.5)
        sampled = energy_stretch(ref, ref, max_sources=10, rng=np.random.default_rng(1))
        assert sampled.max_stretch == pytest.approx(1.0)

    def test_single_node(self):
        g = GeometricGraph(np.zeros((1, 2)), [])
        es = energy_stretch(g, g)
        assert es.max_stretch == 1.0
        assert es.n_pairs == 0


class TestStretchSummary:
    def test_keys_present(self, square_with_diagonal):
        sub, ref = square_with_diagonal
        s = stretch_summary(sub, ref)
        for key in (
            "n_nodes",
            "max_degree",
            "connected",
            "energy_stretch_max",
            "distance_stretch_max",
            "disconnected_pairs",
        ):
            assert key in s
        assert s["connected"] == 1.0
        assert s["disconnected_pairs"] == 0.0
