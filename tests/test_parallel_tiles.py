"""Tiled/process-parallel layer: bit-identical to the serial kernels.

Property, asserted over 20 seeded layouts (uniform and degenerate
clustered) with worker counts cycling through 1/2/4:

* :func:`tiled_theta` builds edge-for-edge the same ΘALG topology as
  ``theta_algorithm`` and :func:`tiled_interference_sets` the same
  conflict CSR as ``interference_sets``;
* :class:`TileWorkerPool` churn application reaches the same edge set
  and conflict rows as serial per-event application after **every**
  batch — including a 1000-event trace — and the from-scratch
  equivalence backstops stay clean.
"""

import math

import numpy as np
import pytest

from repro import (
    DynamicInterference,
    IncrementalTheta,
    clustered_points,
    interference_sets,
    max_range_for_connectivity,
    random_event_trace,
    theta_algorithm,
    uniform_points,
)
from repro.parallel import TiledEngine, TileWorkerPool, tiled_interference_sets, tiled_theta

THETA = math.pi / 9
DELTA = 0.5
SEEDS = list(range(20))
#: worker count per seed — cycles the 1/2/4 matrix through the suite.
WORKERS = {s: (1, 2, 4)[s % 3] for s in SEEDS}


def _layout(n, seed):
    """Uniform for even seeds, degenerate clustered for odd ones."""
    if seed % 2:
        return clustered_points(n, n_clusters=3, spread=0.02, rng=seed)
    return uniform_points(n, rng=seed)


def _serial_twin(pts, d0, events, *, batch=15):
    """Serial per-event application, yielding state after each batch."""
    inc = IncrementalTheta(pts, THETA, d0)
    di = DynamicInterference(inc, DELTA)
    for lo in range(0, len(events), batch):
        for ev in events[lo : lo + batch]:
            di.update_event(inc.apply(ev))
        yield inc, di


class TestTiledConstruction:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_theta_and_conflict_match_serial(self, seed):
        pts = _layout(130, seed)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        topo = theta_algorithm(pts, THETA, d0)
        with TiledEngine(workers=WORKERS[seed], tiles=6) as eng:
            tiled = eng.theta(pts, THETA, d0, delta=DELTA)
            sets_t, stats = eng.interference_sets(topo.graph, DELTA)
        assert tiled.edge_set() == topo.edge_set()
        sets_s = interference_sets(topo.graph, DELTA)
        assert np.array_equal(sets_t.indptr, sets_s.indptr)
        assert np.array_equal(sets_t.indices, sets_s.indices)
        assert stats.n_tiles >= 1 and sum(stats.owned) == len(topo.graph.edges)

    def test_one_shot_wrappers(self):
        pts = uniform_points(90, rng=42)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        topo = theta_algorithm(pts, THETA, d0)
        assert tiled_theta(pts, THETA, d0, workers=2).edge_set() == topo.edge_set()
        sets = tiled_interference_sets(topo.graph, DELTA, workers=2)
        serial = interference_sets(topo.graph, DELTA)
        assert np.array_equal(sets.indices, serial.indices)

    def test_degenerate_all_points_one_tile(self):
        # All mass in one corner: every other tile owns nothing.
        pts = clustered_points(70, n_clusters=1, spread=0.01, rng=5)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        topo = theta_algorithm(pts, THETA, d0)
        with TiledEngine(workers=2, tiles=8) as eng:
            tiled = eng.theta(pts, THETA, d0)
        assert tiled.edge_set() == topo.edge_set()

    def test_empty_and_tiny_inputs(self):
        with TiledEngine(workers=1) as eng:
            assert len(eng.theta(np.empty((0, 2)), THETA, 1.0).graph.edges) == 0
            one = eng.theta(np.array([[0.5, 0.5]]), THETA, 1.0)
            assert len(one.graph.edges) == 0


class TestProcessPoolChurn:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batchwise_equivalence(self, seed):
        pts = _layout(110, seed)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        trace = random_event_trace(
            pts, 45, move_sigma=d0 / 2.0, rng=np.random.default_rng(900 + seed)
        )
        events = list(trace.events())
        inc = IncrementalTheta(pts, THETA, d0)
        di = DynamicInterference(inc, DELTA)
        cap = max([inc.size] + [int(ev.node) + 1 for ev in events]) + 8
        twins = _serial_twin(pts, d0, events, batch=15)
        with TileWorkerPool(inc, di, workers=WORKERS[seed], capacity=cap) as pool:
            for lo in range(0, len(events), 15):
                stats = pool.apply_batch(events[lo : lo + 15])
                inc_s, di_s = next(twins)
                assert inc.edge_set() == inc_s.edge_set()
                assert di.interference_sets() == di_s.interference_sets()
                assert stats.backend == "process"
                assert stats.jobs == WORKERS[seed]
            assert not inc.check_full_equivalence()
            assert di.check_full_equivalence() == 0

    def test_thousand_event_trace(self):
        pts = uniform_points(200, rng=11)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        trace = random_event_trace(
            pts, 1000, move_sigma=d0 / 2.0, rng=np.random.default_rng(1234)
        )
        events = list(trace.events())
        inc = IncrementalTheta(pts, THETA, d0)
        di = DynamicInterference(inc, DELTA)
        cap = max([inc.size] + [int(ev.node) + 1 for ev in events]) + 8
        twins = _serial_twin(pts, d0, events, batch=25)
        halo_total = 0
        with TileWorkerPool(inc, di, workers=2, capacity=cap) as pool:
            for lo in range(0, len(events), 25):
                stats = pool.apply_batch(events[lo : lo + 25])
                halo_total += stats.halo_nodes
                inc_s, di_s = next(twins)
                assert inc.edge_set() == inc_s.edge_set()
                assert di.interference_sets() == di_s.interference_sets()
            assert not inc.check_full_equivalence()
            assert di.check_full_equivalence() == 0
        # diffs crossed worker boundaries (the halo exchange did work)
        assert halo_total > 0

    def test_pool_without_interference(self):
        pts = uniform_points(80, rng=3)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        trace = random_event_trace(
            pts, 40, move_sigma=d0 / 2.0, rng=np.random.default_rng(8)
        )
        events = list(trace.events())
        inc_s = IncrementalTheta(pts, THETA, d0)
        for ev in events:
            inc_s.apply(ev)
        inc = IncrementalTheta(pts, THETA, d0)
        cap = max([inc.size] + [int(ev.node) + 1 for ev in events]) + 8
        with TileWorkerPool(inc, workers=2, capacity=cap) as pool:
            pool.apply_batch(events)
        assert inc.edge_set() == inc_s.edge_set()
        assert not inc.check_full_equivalence()

    def test_closed_pool_refuses_batches(self):
        pts = uniform_points(40, rng=1)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        pool = TileWorkerPool(inc, workers=1, capacity=inc.size + 8)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.apply_batch([])

    def test_mismatched_interference_rejected(self):
        pts = uniform_points(40, rng=2)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc_a = IncrementalTheta(pts, THETA, d0)
        inc_b = IncrementalTheta(pts, THETA, d0)
        di_b = DynamicInterference(inc_b, DELTA)
        with pytest.raises(ValueError, match="different IncrementalTheta"):
            TileWorkerPool(inc_a, di_b, workers=1, capacity=inc_a.size + 8)
