"""Engine integration with dynamic topologies: churn, faults, accounting.

Exercises the whole pipeline the dynamic subsystem adds to
:class:`repro.sim.engine.SimulationEngine`: event streams consumed via
incremental maintenance, packet loss at failed nodes charged to
``churn_drops``, injections refused when an endpoint is down, and the
per-step churn columns of :class:`repro.obs.metrics.StepSeries` — all
under the conservation identity
``accepted == delivered + leftover + churn_drops``.
"""

import math

import numpy as np
import pytest

from repro import (
    BalancingConfig,
    BalancingRouter,
    DynamicTopology,
    IncrementalTheta,
    RandomWaypointMobility,
    ShortestPathRouter,
    SimulationEngine,
    TrackedBalancingRouter,
    failstop_trace,
    max_range_for_connectivity,
    merge_traces,
    mobility_trace,
    theta_algorithm,
    uniform_points,
)
from repro.dynamic.faults import drop_buffered_packets, filter_injections
from repro.obs.metrics import StepSeries

THETA = math.pi / 9


def _dynamic_setup(n=30, seed=0, steps=60, *, fail_rate=0.1):
    pts = uniform_points(n, rng=seed)
    d0 = max_range_for_connectivity(pts, slack=1.5)
    mob = RandomWaypointMobility(pts, speed=d0 / 10.0, rng=seed + 1)
    trace = merge_traces(
        failstop_trace(n, steps, fail_rate=fail_rate, mean_downtime=8.0, min_alive=n - 4, rng=seed + 2),
        mobility_trace(mob, steps, every=5),
    )
    inc = IncrementalTheta(pts, THETA, d0)
    return pts, d0, DynamicTopology(inc, trace)


class TestChurnEndToEnd:
    def test_delivery_and_conservation_under_churn(self):
        n, steps = 30, 60
        pts, d0, dyn = _dynamic_setup(n, 0, steps)
        dests = [0, 1]
        router = BalancingRouter(dyn.capacity, dests, BalancingConfig(0.0, 0.0, 64))
        gen = np.random.default_rng(3)

        def injections(t):
            if t >= steps - 10:
                return []
            src = int(gen.integers(2, n))
            return [(src, int(gen.choice(dests)), 1)]

        series = StepSeries()
        engine = SimulationEngine(router, injections_fn=injections, dynamic=dyn, step_series=series)
        result = engine.run(steps)

        stats = result.stats
        assert stats.delivered > 0
        # The conservation identity, exactly.
        assert stats.accepted == stats.delivered + result.leftover + stats.churn_drops
        assert stats.injected == stats.accepted + stats.dropped
        # Events actually churned the network and were all consumed.
        assert dyn.events_applied == len(dyn.events)
        # The maintained topology still matches a from-scratch rebuild.
        assert not dyn.incremental.check_full_equivalence()

    def test_series_churn_columns_reconcile(self):
        n, steps = 24, 40
        pts, d0, dyn = _dynamic_setup(n, 7, steps)
        router = BalancingRouter(dyn.capacity, [0], BalancingConfig(0.0, 0.0, 64))
        series = StepSeries()
        engine = SimulationEngine(
            router,
            injections_fn=lambda t: [(5, 0, 1)] if t < 20 else [],
            dynamic=dyn,
            step_series=series,
        )
        result = engine.run(steps)
        arrays = series.arrays()
        assert len(arrays["events_applied"]) == steps
        # Cumulative columns end at the dynamic topology's totals...
        assert arrays["events_applied"][-1] == dyn.events_applied
        assert arrays["repair_nodes_touched"][-1] == dyn.nodes_touched_total
        # ...and never decrease.
        assert (np.diff(arrays["events_applied"]) >= 0).all()
        assert arrays["delivered"][-1] == result.stats.delivered
        assert arrays["churn_drops"][-1] == result.stats.churn_drops

    def test_static_dynamic_topology_matches_explicit_edges(self):
        # With an empty trace, driving through `dynamic` must equal the
        # static engine run on the same ΘALG topology.
        from repro.dynamic.events import EventTrace

        pts = uniform_points(25, rng=4)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        dyn = DynamicTopology(inc, EventTrace([]))
        topo = theta_algorithm(pts, THETA, d0)
        g = topo.graph

        def make_router():
            return BalancingRouter(25, [0], BalancingConfig(0.0, 0.0, 64))

        def inj(t):
            return [(7, 0, 1)] if t < 15 else []

        r_dyn = make_router()
        SimulationEngine(r_dyn, injections_fn=inj, dynamic=dyn).run(30)
        r_static = make_router()
        edges = g.directed_edge_array()
        costs = np.concatenate([g.edge_costs, g.edge_costs])
        SimulationEngine(r_static, lambda t: (edges, costs), inj).run(30)
        assert r_dyn.stats.delivered == r_static.stats.delivered
        assert r_dyn.stats.churn_drops == 0

    def test_requires_edges_or_dynamic(self):
        router = BalancingRouter(4, [0], BalancingConfig(1.0, 0.0, 8))
        with pytest.raises(ValueError):
            SimulationEngine(router)


class TestFaultInjection:
    def test_drop_from_heights_router(self):
        router = BalancingRouter(6, [0], BalancingConfig(1.0, 0.0, 32))
        router.inject(3, 0, 5)
        router.inject(4, 0, 2)
        assert drop_buffered_packets(router, [3]) == 5
        assert router.heights[3].sum() == 0
        assert router.total_packets() == 2
        assert drop_buffered_packets(router, []) == 0
        # Ids beyond the router's size are ignored, not an error.
        assert drop_buffered_packets(router, [99]) == 0

    def test_drop_from_queue_router(self):
        pts = uniform_points(12, rng=5)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        router = ShortestPathRouter(theta_algorithm(pts, THETA, d0).graph)
        router.inject(2, 9, 3)
        assert drop_buffered_packets(router, [2]) == 3
        assert router.total_packets() == 0

    def test_drop_through_tracking_wrapper(self):
        inner = BalancingRouter(5, [0], BalancingConfig(1.0, 0.0, 16))
        tracked = TrackedBalancingRouter(inner)
        edges = np.array([[2, 1], [1, 0]], dtype=np.intp)
        costs = np.ones(2)
        tracked.run_step(edges, costs, [(2, 0, 4)])
        buffered = tracked.total_packets()
        assert buffered > 0
        assert drop_buffered_packets(tracked, list(range(5))) == buffered
        assert inner.heights.sum() == 0
        # Stamps were cleared alongside heights: the drift check passes.
        tracked.run_step(edges, costs, [(2, 0, 1)])

    def test_unknown_router_shape_raises(self):
        with pytest.raises(TypeError):
            drop_buffered_packets(object(), [0])

    def test_filter_injections(self):
        usable, refused = filter_injections(
            [(0, 1, 2), (2, 1, 3), (0, 3, 1), (4, 0, 2)], alive=[0, 1, 4]
        )
        assert usable == [(0, 1, 2), (4, 0, 2)]
        assert refused == 4

    def test_refused_injections_counted_as_drops(self):
        # A destination that fails mid-run turns its traffic into drops,
        # never into phantom deliveries.
        from repro.dynamic.events import EventTrace, FailStop

        pts = uniform_points(20, rng=6)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        dyn = DynamicTopology(inc, EventTrace([(10, FailStop(0))], horizon=30))
        router = BalancingRouter(20, [0], BalancingConfig(0.0, 0.0, 64))
        engine = SimulationEngine(router, injections_fn=lambda t: [(7, 0, 1)], dynamic=dyn)
        result = engine.run(30)
        stats = result.stats
        # Everything offered after the failure was refused.
        assert stats.dropped >= 19
        assert stats.injected == 30
        assert stats.accepted == stats.delivered + result.leftover + stats.churn_drops


class TestMACUnderChurn:
    def _mac_setup(self, n=30, seed=2, steps=40, *, parallel=False, jobs=1):
        from repro import DynamicInterference, DynamicMAC

        pts, d0, _ = _dynamic_setup(n, seed, steps)[:3]
        # Rebuild with interference maintenance wired into the topology.
        mob = RandomWaypointMobility(pts, speed=d0 / 10.0, rng=seed + 1)
        trace = merge_traces(
            failstop_trace(n, steps, fail_rate=0.1, mean_downtime=8.0, min_alive=n - 4, rng=seed + 2),
            mobility_trace(mob, steps, every=5),
        )
        inc = IncrementalTheta(pts, THETA, d0)
        di = DynamicInterference(inc, 0.5)
        dyn = DynamicTopology(inc, trace, interference=di, parallel=parallel, jobs=jobs)
        mac = DynamicMAC(di, rng=seed + 3)
        return dyn, di, mac

    def test_engine_runs_guard_zone_mac_over_churned_topology(self):
        n, steps = 30, 40
        dyn, di, mac = self._mac_setup(n, 2, steps)
        dests = [0, 1]
        router = BalancingRouter(dyn.capacity, dests, BalancingConfig(0.0, 0.0, 64))
        gen = np.random.default_rng(5)

        def injections(t):
            if t >= steps - 10:
                return []
            return [(int(gen.integers(2, n)), int(gen.choice(dests)), 1)]

        series = StepSeries()
        engine = SimulationEngine(
            router, injections_fn=injections, dynamic=dyn, mac=mac, step_series=series
        )
        result = engine.run(steps)
        stats = result.stats
        # Conservation holds exactly under MAC + churn.
        assert stats.accepted == stats.delivered + result.leftover + stats.churn_drops
        assert dyn.events_applied == len(dyn.events)
        # Conflict structure stayed in lockstep and bit-identical.
        assert di.check_full_equivalence() == 0
        # The series carries the cumulative conflict column.
        arrays = series.arrays()
        assert len(arrays["conflict_rows_touched"]) == steps
        assert arrays["conflict_rows_touched"][-1] == dyn.conflict_rows_total

    def test_parallel_dynamic_topology_matches_serial(self):
        n, steps = 30, 40
        dyn_s, di_s, _ = self._mac_setup(n, 4, steps)
        dyn_p, di_p, _ = self._mac_setup(n, 4, steps, parallel=True, jobs=2)
        for t in range(steps):
            dyn_s.step(t)
            dyn_p.step(t)
        assert np.array_equal(
            dyn_s.incremental.edge_array(), dyn_p.incremental.edge_array()
        )
        assert di_s.interference_sets() == di_p.interference_sets()
        assert dyn_p.conflict_rows_total > 0

    def test_mac_requires_dynamic(self):
        from repro import DynamicInterference, DynamicMAC

        pts = uniform_points(20, rng=1)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        mac = DynamicMAC(DynamicInterference(inc, 0.5), rng=0)
        router = BalancingRouter(20, [0], BalancingConfig(0.0, 0.0, 64))
        with pytest.raises(ValueError, match="requires a dynamic topology"):
            SimulationEngine(router, mac=mac)
        from repro.dynamic.events import EventTrace

        dyn = DynamicTopology(inc, EventTrace([], horizon=5))
        with pytest.raises(ValueError, match="not both"):
            SimulationEngine(router, lambda t: None, dynamic=dyn, mac=mac)
