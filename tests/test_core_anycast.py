"""Tests for the anycast balancing extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.anycast import AnycastBalancingRouter
from repro.core.balancing import BalancingConfig


def line_edges(n: int) -> tuple[np.ndarray, np.ndarray]:
    e = np.array([[i, i + 1] for i in range(n - 1)])
    edges = np.vstack([e, e[:, ::-1]])
    return edges, np.ones(len(edges)) * 0.1


def make(n=5, groups=((4,),), T=0.0, H=64) -> AnycastBalancingRouter:
    return AnycastBalancingRouter(
        n, [list(g) for g in groups], BalancingConfig(T, 0.0, H)
    )


class TestConstruction:
    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            make(groups=())

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            make(groups=((),))

    def test_out_of_range_member(self):
        with pytest.raises(ValueError):
            make(n=3, groups=((5,),))

    def test_membership_matrix(self):
        r = make(n=5, groups=((0, 4), (2,)))
        assert r.member[0, 0] and r.member[4, 0] and r.member[2, 1]
        assert not r.member[1, 0]


class TestInjection:
    def test_inject_and_height(self):
        r = make()
        assert r.inject(0, 0, 3) == 3
        assert r.height(0, 0) == 3

    def test_inject_at_member_rejected(self):
        r = make(groups=((4, 2),))
        with pytest.raises(ValueError):
            r.inject(2, 0, 1)

    def test_unknown_group(self):
        r = make()
        with pytest.raises(KeyError):
            r.inject(0, 7, 1)

    def test_drop_on_full(self):
        r = make(H=2)
        assert r.inject(0, 0, 5) == 2
        assert r.stats.dropped == 3


class TestAbsorption:
    def test_delivery_at_single_member(self):
        r = make(n=3, groups=((2,),))
        edges, costs = line_edges(3)
        r.inject(0, 0, 1)
        total = 0
        for _ in range(8):
            total += r.run_step(edges, costs)
        assert total == 1
        assert r.total_packets() == 0

    def test_delivery_at_nearest_member(self):
        """Packet injected at node 2 of a 7-line with members {0, 6}:
        the gradient pulls it to whichever member it reaches — both
        absorb, and nothing remains buffered."""
        r = make(n=7, groups=((0, 6),))
        edges, costs = line_edges(7)
        r.inject(2, 0, 4)
        for _ in range(30):
            r.run_step(edges, costs)
        assert r.stats.delivered == 4
        assert r.total_packets() == 0

    def test_members_never_buffer(self):
        r = make(n=5, groups=((0, 4),))
        edges, costs = line_edges(5)
        r.inject(2, 0, 6)
        for _ in range(30):
            r.run_step(edges, costs)
            assert r.heights[0, 0] == 0
            assert r.heights[4, 0] == 0

    def test_multiple_groups_independent(self):
        """Opposing groups on a line: both gradients deliver.  T = 1
        avoids the T=0 ping-pong cycle (two packets converging on an
        empty buffer can oscillate forever below the analyzed T regime)
        at the price of a standing staircase, so only the mass above
        the gradient inventory arrives."""
        r = make(n=5, groups=((4,), (0,)), T=1.0)
        edges, costs = line_edges(5)
        r.inject(2, 0, 8)
        r.inject(2, 1, 8)
        for _ in range(60):
            r.run_step(edges, costs)
        assert r.stats.delivered >= 4
        assert r.stats.accepted == r.stats.delivered + r.total_packets()


class TestCostAwareness:
    def test_gamma_blocks_expensive_edges(self):
        r = AnycastBalancingRouter(2, [[1]], BalancingConfig(0.0, 10.0, 64))
        r.inject(0, 0, 3)
        edges = np.array([[0, 1]])
        assert r.decide(edges, np.array([1.0])) == []
        assert len(r.decide(edges, np.array([0.01]))) == 1

    def test_failed_transmission_retained(self):
        r = make(n=2, groups=((1,),))
        edges = np.array([[0, 1]])
        r.inject(0, 0, 1)
        r.run_step(edges, np.array([0.1]), success_fn=lambda t: [False] * len(t))
        assert r.total_packets() == 1
        assert r.stats.interference_failures == 1


class TestConservation:
    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 1)), min_size=1, max_size=20),
        st.integers(1, 30),
    )
    @settings(max_examples=30, deadline=None)
    def test_accepted_equals_delivered_plus_buffered(self, injections, steps):
        n = 6
        r = AnycastBalancingRouter(
            n, [[0], [n - 1]], BalancingConfig(0.0, 0.0, 16)
        )
        ring = np.array([[i, (i + 1) % n] for i in range(n)])
        edges = np.vstack([ring, ring[:, ::-1]])
        costs = np.ones(len(edges)) * 0.1
        for node, g in injections:
            if not r.member[node, g]:
                r.inject(node, g, 1)
        for _ in range(steps):
            r.run_step(edges, costs)
        assert r.stats.accepted == r.stats.delivered + r.total_packets()
