"""Oracle tests: optimized kernels vs naive reference implementations.

Each test re-implements a core computation in the most literal way
possible (O(n²) scans, networkx calls) and checks the library agrees
exactly.  These catch vectorization and spatial-index bugs that
property tests on invariants can miss.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.theta import theta_algorithm
from repro.geometry.pointsets import uniform_points
from repro.geometry.sectors import SectorPartition
from repro.graphs.metrics import is_connected, shortest_path_costs
from repro.graphs.transmission import max_range_for_connectivity
from repro.graphs.yao import yao_out_edges


def naive_yao(pts: np.ndarray, theta: float, max_range: float) -> set[tuple[int, int]]:
    """Literal phase-1: per node, per cone, nearest in-range node."""
    part = SectorPartition(theta)
    n = len(pts)
    out = set()
    for u in range(n):
        best: dict[int, tuple[float, int]] = {}
        for v in range(n):
            if v == u:
                continue
            d = float(np.hypot(*(pts[v] - pts[u])))
            if d > max_range + 1e-12:
                continue
            ang = math.atan2(pts[v][1] - pts[u][1], pts[v][0] - pts[u][0]) % (2 * math.pi)
            s = int(part.index_of_angle(ang))
            key = (d, v)
            if s not in best or key < best[s]:
                best[s] = key
        for s, (_, v) in best.items():
            out.add((u, v))
    return out


def naive_theta_edges(pts: np.ndarray, theta: float, max_range: float) -> set[tuple[int, int]]:
    """Literal two-phase ΘALG over the naive Yao choices."""
    part = SectorPartition(theta)
    yao = naive_yao(pts, theta, max_range)
    admitted: dict[tuple[int, int], tuple[float, int]] = {}
    for (w, x) in yao:  # directed w -> x
        ang = math.atan2(pts[w][1] - pts[x][1], pts[w][0] - pts[x][0]) % (2 * math.pi)
        s = int(part.index_of_angle(ang))
        d = float(np.hypot(*(pts[w] - pts[x])))
        key = (x, s)
        if key not in admitted or (d, w) < admitted[key]:
            admitted[key] = (d, w)
    edges = set()
    for (x, _s), (_d, w) in admitted.items():
        edges.add((min(w, x), max(w, x)))
    return edges


class TestYaoOracle:
    @given(st.integers(4, 30), st.integers(0, 10))
    @settings(max_examples=20, deadline=None)
    def test_matches_naive(self, n, seed):
        pts = uniform_points(n, rng=seed)
        theta = math.pi / 6
        d = 0.6
        fast = {(int(a), int(b)) for a, b in yao_out_edges(pts, theta, d)}
        assert fast == naive_yao(pts, theta, d)


class TestThetaOracle:
    @given(st.integers(4, 30), st.integers(0, 10))
    @settings(max_examples=20, deadline=None)
    def test_matches_naive(self, n, seed):
        pts = uniform_points(n, rng=seed)
        theta = math.pi / 6
        d = 0.6
        topo = theta_algorithm(pts, theta, d)
        fast = {(int(a), int(b)) for a, b in topo.graph.edges}
        assert fast == naive_theta_edges(pts, theta, d)


class TestMetricsVsNetworkx:
    @pytest.fixture(scope="class")
    def world(self):
        pts = uniform_points(50, rng=21)
        d = max_range_for_connectivity(pts, slack=1.4)
        g = repro.transmission_graph(pts, d)
        return g, g.to_networkx()

    def test_connectivity(self, world):
        g, nxg = world
        assert is_connected(g) == nx.is_connected(nxg)

    def test_shortest_path_costs(self, world):
        g, nxg = world
        ours = shortest_path_costs(g, weight="cost")
        theirs = dict(nx.all_pairs_dijkstra_path_length(nxg, weight="cost"))
        for s in range(g.n_nodes):
            for t in range(g.n_nodes):
                ref = theirs[s].get(t, float("inf"))
                assert ours[s, t] == pytest.approx(ref, rel=1e-9, abs=1e-12)

    def test_shortest_path_lengths(self, world):
        g, nxg = world
        ours = shortest_path_costs(g, weight="length")
        ref = dict(nx.all_pairs_dijkstra_path_length(nxg, weight="length"))
        for s in range(0, g.n_nodes, 7):
            for t in range(0, g.n_nodes, 5):
                assert ours[s, t] == pytest.approx(ref[s].get(t, float("inf")), rel=1e-9)

    def test_degrees(self, world):
        g, nxg = world
        from repro.graphs.metrics import degrees

        ours = degrees(g)
        for v in range(g.n_nodes):
            assert ours[v] == nxg.degree[v]


class TestStretchVsNaive:
    def test_energy_stretch_matches_direct_computation(self):
        pts = uniform_points(30, rng=22)
        d = max_range_for_connectivity(pts, slack=1.4)
        ref = repro.transmission_graph(pts, d)
        sub = theta_algorithm(pts, math.pi / 9, d).graph
        es = repro.energy_stretch(sub, ref)
        d_sub = shortest_path_costs(sub, weight="cost")
        d_ref = shortest_path_costs(ref, weight="cost")
        worst = 1.0
        for s in range(30):
            for t in range(30):
                if s != t and np.isfinite(d_ref[s, t]) and d_ref[s, t] > 0:
                    worst = max(worst, d_sub[s, t] / d_ref[s, t])
        assert es.max_stretch == pytest.approx(worst)


class TestInterferenceVsNaive:
    def test_sets_match_quadratic_scan(self, small_world):
        _, _, _, topo = small_world
        g = topo.graph
        from repro.interference.conflict import interference_sets
        from repro.interference.model import InterferenceModel

        model = InterferenceModel(0.5)
        fast = interference_sets(g, 0.5)
        for e1 in range(0, g.n_edges, 5):
            naive = {
                e2
                for e2 in range(g.n_edges)
                if e2 != e1
                and model.pair_interferes(g.points, tuple(g.edges[e1]), tuple(g.edges[e2]))
            }
            assert set(fast[e1].tolist()) == naive
