"""Failure-injection tests: ΘALG protocol over a lossy medium."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.theta import theta_algorithm
from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity
from repro.localsim.lossy import lossy_protocol_run


@pytest.fixture(scope="module")
def world():
    pts = uniform_points(50, rng=17)
    d = max_range_for_connectivity(pts, slack=1.4)
    return pts, d


class TestLossless:
    def test_p_zero_equals_ideal(self, world):
        pts, d = world
        built, rep = lossy_protocol_run(pts, math.pi / 9, d, loss_prob=0.0, rng=0)
        ideal = theta_algorithm(pts, math.pi / 9, d).graph
        assert np.array_equal(built.edges, ideal.edges)
        assert rep.missing_edges == 0
        assert rep.spurious_edges == 0
        assert rep.edge_recall == 1.0

    def test_p_zero_transmission_count_minimal(self, world):
        """Without loss every message is sent exactly once."""
        from repro.localsim.runtime import LocalRuntime

        pts, d = world
        _, rep = lossy_protocol_run(pts, math.pi / 9, d, loss_prob=0.0, rng=0)
        rt = LocalRuntime(pts, math.pi / 9, d)
        rt.run()
        assert rep.transmissions == rt.trace.total_messages


class TestWithLoss:
    def test_retries_recover_exact_topology(self, world):
        """Moderate loss + generous retries reproduce the ideal N whp."""
        pts, d = world
        built, rep = lossy_protocol_run(
            pts, math.pi / 9, d, loss_prob=0.2, retries=12, rng=1
        )
        assert rep.missing_edges == 0
        assert rep.spurious_edges == 0
        assert rep.connected

    def test_loss_costs_extra_transmissions(self, world):
        pts, d = world
        _, clean = lossy_protocol_run(pts, math.pi / 9, d, loss_prob=0.0, rng=2)
        _, lossy = lossy_protocol_run(pts, math.pi / 9, d, loss_prob=0.3, retries=8, rng=2)
        assert lossy.transmissions > clean.transmissions

    def test_no_retries_degrades_gracefully(self, world):
        """Single-shot at heavy loss: edges go missing, recall reported."""
        pts, d = world
        built, rep = lossy_protocol_run(
            pts, math.pi / 9, d, loss_prob=0.5, retries=0, rng=3
        )
        assert rep.missing_edges > 0
        assert 0.0 <= rep.edge_recall < 1.0
        assert built.n_edges == rep.built_edges

    def test_recall_monotone_in_retries(self, world):
        """More retries ⇒ (weakly) better recall on the same seed."""
        pts, d = world
        recalls = []
        for retries in (0, 2, 8):
            _, rep = lossy_protocol_run(
                pts, math.pi / 9, d, loss_prob=0.4, retries=retries, rng=4
            )
            recalls.append(rep.edge_recall)
        assert recalls[0] <= recalls[-1]

    @given(st.integers(0, 15))
    @settings(max_examples=10, deadline=None)
    def test_property_report_consistent(self, seed):
        pts = uniform_points(30, rng=seed)
        d = max_range_for_connectivity(pts, slack=1.3)
        built, rep = lossy_protocol_run(
            pts, math.pi / 9, d, loss_prob=0.3, retries=2, rng=seed
        )
        assert rep.built_edges == built.n_edges
        assert rep.missing_edges <= rep.ideal_edges
        assert rep.built_edges == rep.ideal_edges - rep.missing_edges + rep.spurious_edges

    def test_parameter_validation(self, world):
        pts, d = world
        with pytest.raises(ValueError):
            lossy_protocol_run(pts, math.pi / 9, d, loss_prob=1.0)
        with pytest.raises(ValueError):
            lossy_protocol_run(pts, math.pi / 9, d, loss_prob=-0.1)
        with pytest.raises(ValueError):
            lossy_protocol_run(pts, math.pi / 9, d, retries=-1)
