"""Incremental ΘALG maintenance: exact equivalence with from-scratch runs.

The load-bearing guarantee of :mod:`repro.dynamic.incremental` is that
after *every* event the maintained topology equals
:func:`repro.core.theta.theta_algorithm` recomputed from scratch on the
live node set, edge for edge in global-id space.  These tests assert it
over many seeded random traces (the property test) and over one long
mixed trace (the 1000-event acceptance run), plus the repair-stats and
spatial-index contracts the E23 experiment relies on.
"""

import math

import numpy as np
import pytest

from repro import (
    DynamicTopology,
    FailStop,
    IncrementalTheta,
    NodeJoin,
    NodeLeave,
    NodeMove,
    Recover,
    max_range_for_connectivity,
    random_event_trace,
    theta_algorithm,
    uniform_points,
)
from repro.dynamic.events import EventTrace
from repro.geometry.spatialindex import DynamicGridIndex, GridIndex

THETA = math.pi / 9


def _maintainer(n, seed, *, slack=1.5, theta=THETA):
    pts = uniform_points(n, rng=seed)
    d0 = max_range_for_connectivity(pts, slack=slack)
    return pts, d0, IncrementalTheta(pts, theta, d0)


class TestDynamicGridIndex:
    def test_matches_static_index_queries(self):
        pts = uniform_points(120, rng=0)
        cell = 0.15
        static = GridIndex(pts, cell)
        dyn = DynamicGridIndex(pts, cell)
        gen = np.random.default_rng(1)
        for _ in range(50):
            center = gen.random(2)
            r = float(gen.uniform(0.01, 0.4))
            np.testing.assert_array_equal(
                static.query_radius(center, r), dyn.query_radius(center, r)
            )
        # exclude= behaves identically too.
        np.testing.assert_array_equal(
            static.query_radius(pts[3], cell, exclude=3),
            dyn.query_radius(pts[3], cell, exclude=3),
        )

    def test_insert_remove_move_lifecycle(self):
        pts = uniform_points(10, rng=2)
        dyn = DynamicGridIndex(pts, 0.2)
        assert len(dyn) == 10 and dyn.size == 10
        dyn.remove(4)
        assert len(dyn) == 9 and not dyn.is_alive(4)
        assert 4 not in dyn.query_radius(pts[4], 1.5).tolist()
        # Position is retained for a later recovery-style re-insert.
        np.testing.assert_allclose(dyn.position(4), pts[4])
        dyn.insert(4, np.array([0.5, 0.5]))
        assert dyn.is_alive(4)
        dyn.move(4, np.array([0.9, 0.1]))
        np.testing.assert_allclose(dyn.position(4), [0.9, 0.1])
        dyn.insert(10, np.array([0.3, 0.3]))  # grows
        assert dyn.size == 11 and len(dyn) == 11
        assert dyn.alive_ids().tolist() == list(range(11))

    def test_query_epsilon_matches_static(self):
        # Boundary inclusion must be bit-for-bit the static index's
        # d² <= r² + 1e-12 rule, or incremental/from-scratch diverge.
        pts = np.array([[0.0, 0.0], [0.3, 0.0]])
        static = GridIndex(pts, 0.3)
        dyn = DynamicGridIndex(pts, 0.3)
        np.testing.assert_array_equal(
            static.query_radius(np.zeros(2), 0.3), dyn.query_radius(np.zeros(2), 0.3)
        )


class TestEquivalenceProperty:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_trace_equals_full_rebuild(self, seed):
        pts, d0, inc = _maintainer(40, seed)
        trace = random_event_trace(pts, 40, move_sigma=d0 / 2.0, rng=seed + 100)
        for k, ev in enumerate(trace.events()):
            inc.apply(ev)
            diff = inc.check_full_equivalence()
            assert not diff, f"seed {seed}, event {k} ({ev}): {sorted(diff)[:5]}"

    def test_thousand_event_acceptance_trace(self):
        # The ISSUE acceptance criterion: a 1000-event random trace with
        # edge-for-edge equality after every single event.
        pts, d0, inc = _maintainer(60, 23)
        trace = random_event_trace(pts, 1000, move_sigma=d0 / 2.0, rng=2023)
        assert len(trace) == 1000
        for k, ev in enumerate(trace.events()):
            inc.apply(ev)
            assert not inc.check_full_equivalence(), f"event {k}: {ev}"

    def test_large_moves_across_the_domain(self):
        # Teleport-scale moves stress the two-anchor dirty region.
        pts, d0, inc = _maintainer(40, 5)
        gen = np.random.default_rng(6)
        alive = list(range(40))
        for k in range(60):
            node = int(gen.choice(alive))
            x, y = gen.random(2)
            inc.apply(NodeMove(node, float(x), float(y)))
            assert not inc.check_full_equivalence(), f"move {k}"

    def test_offset_and_theta_variants(self):
        for theta, offset in ((math.pi / 6, 0.0), (math.pi / 9, 0.3)):
            pts = uniform_points(35, rng=7)
            d0 = max_range_for_connectivity(pts, slack=1.5)
            inc = IncrementalTheta(pts, theta, d0, offset=offset)
            trace = random_event_trace(pts, 30, rng=8)
            for ev in trace.events():
                inc.apply(ev)
                assert not inc.check_full_equivalence()


class TestRepairStats:
    def test_stats_shape_and_bounds(self):
        pts, d0, inc = _maintainer(80, 3)
        trace = random_event_trace(pts, 60, move_sigma=d0 / 2.0, rng=4)
        for ev in trace.events():
            stats = inc.apply(ev)
            assert stats.kind in ("join", "leave", "move", "fail", "recover")
            assert stats.node == ev.node
            assert stats.nodes_touched >= 1
            assert stats.edges_flipped >= 0
            assert stats.wall_time >= 0.0
            # The construction bound: repair never reaches past 2D.
            assert stats.update_radius <= 2.0 * d0 + 1e-9

    def test_initial_state_matches_scratch(self):
        pts, d0, inc = _maintainer(50, 9)
        assert inc.edge_set() == theta_algorithm(pts, THETA, d0).edge_set()
        assert not inc.check_full_equivalence()

    def test_isolated_join_touches_little(self):
        # A join far from everyone repairs only itself.
        pts = uniform_points(30, rng=10) * 0.1  # cluster in a corner
        d0 = max_range_for_connectivity(pts, slack=1.2)
        inc = IncrementalTheta(pts, THETA, d0)
        far = 0.1 + 10 * d0
        stats = inc.apply(NodeJoin(30, far, far))
        assert stats.nodes_touched == 1
        assert not inc.check_full_equivalence()


class TestValidation:
    def test_event_preconditions(self):
        pts, d0, inc = _maintainer(10, 11)
        inc.apply(FailStop(3))
        with pytest.raises(ValueError):
            inc.apply(NodeJoin(3, 0.5, 0.5))  # failed ⇒ Recover, not Join
        with pytest.raises(ValueError):
            inc.apply(FailStop(3))  # already down
        with pytest.raises(ValueError):
            inc.apply(Recover(5))  # was never failed
        # A failed node may still move: position-only, no repair.
        stats = inc.apply(NodeMove(3, 0.5, 0.5))
        assert stats.nodes_touched == 0 and stats.edges_flipped == 0
        assert not inc.check_full_equivalence()
        inc.apply(Recover(3))
        np.testing.assert_allclose(inc.position(3), [0.5, 0.5])
        assert not inc.check_full_equivalence()
        inc.apply(NodeLeave(3))
        with pytest.raises(ValueError):
            inc.apply(NodeLeave(3))
        with pytest.raises(ValueError):
            inc.apply(NodeMove(3, 0.2, 0.2))  # departed nodes don't move

    def test_failed_ids_tracking(self):
        pts, d0, inc = _maintainer(10, 12)
        assert inc.failed_ids() == set()
        inc.apply(FailStop(2))
        assert inc.failed_ids() == {2}
        assert inc.n_alive == 9
        inc.apply(Recover(2))
        assert inc.failed_ids() == set()
        assert inc.n_alive == 10


class TestDynamicTopology:
    def test_step_classification_and_counters(self):
        pts, d0, inc = _maintainer(12, 13)
        trace = EventTrace(
            [
                (0, FailStop(1)),
                (0, NodeJoin(12, 0.4, 0.4)),
                (2, Recover(1)),
                (2, NodeLeave(0)),
            ]
        )
        dyn = DynamicTopology(inc, trace)
        assert dyn.capacity == 13
        c0 = dyn.step(0)
        assert c0.events_applied == 2
        assert c0.failed_nodes == [1] and c0.removed_nodes == [1]
        assert c0.joined_nodes == [12]
        assert dyn.step(1).events_applied == 0
        c2 = dyn.step(2)
        assert c2.joined_nodes == [1] and c2.removed_nodes == [0]
        assert dyn.events_applied == 4
        assert dyn.nodes_touched_total >= 4
        assert len(dyn.repairs) == 4
        assert 0 not in dyn.alive_ids().tolist()
        edges = dyn.active_edges()
        assert edges.ndim == 2 and edges.shape[1] == 2
        assert not inc.check_full_equivalence()
