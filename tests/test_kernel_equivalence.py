"""Golden equivalence: vectorized kernels vs. retained naive references.

Every hot-path kernel rewritten with batched array operations is pinned
edge-for-edge / entry-for-entry against its original loop implementation
in :mod:`repro._reference`, over ≥20 seeded random point sets plus the
degenerate geometries (collinear, lattice, coincident, single edge,
empty) where tie-breaking and boundary epsilons actually bite.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro._reference import (
    all_pairs_within_reference,
    balancing_decide_reference,
    interference_sets_reference,
    max_edge_stretch_reference,
    theta_edges_reference,
    yao_out_edges_reference,
)
from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.core.theta import theta_algorithm
from repro.geometry.spatialindex import GridIndex
from repro.graphs.base import GeometricGraph
from repro.graphs.metrics import energy_stretch, shortest_path_costs
from repro.graphs.transmission import max_range_for_connectivity, transmission_graph
from repro.graphs.yao import yao_out_edges
from repro.interference.conflict import interference_sets

SEEDS = list(range(20))

DEGENERATE_POINTS = {
    "collinear": np.column_stack([np.arange(12.0), np.zeros(12)]),
    "lattice": np.stack(
        np.meshgrid(np.arange(5.0), np.arange(5.0)), axis=-1
    ).reshape(-1, 2),
    "coincident": np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0], [1.0, 1.0]]),
    "two_points": np.array([[0.0, 0.0], [0.7, 0.2]]),
}


def random_points(seed: int, n: int = 60) -> np.ndarray:
    return np.random.default_rng(seed).random((n, 2))


def as_pair_set(edges) -> set:
    return {(min(int(a), int(b)), max(int(a), int(b))) for a, b in edges}


# ---------------------------------------------------------------------------
# GridIndex.all_pairs_within
# ---------------------------------------------------------------------------


class TestAllPairsEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random(self, seed):
        pts = random_points(seed)
        r = 0.1 + 0.3 * (seed / len(SEEDS))
        got = GridIndex(pts, cell=max(r, 0.05)).all_pairs_within(r)
        want = all_pairs_within_reference(pts, r)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("name", sorted(DEGENERATE_POINTS))
    def test_degenerate(self, name):
        pts = DEGENERATE_POINTS[name]
        for r in (0.5, 1.0, 2.0):
            got = GridIndex(pts, cell=r).all_pairs_within(r)
            assert np.array_equal(got, all_pairs_within_reference(pts, r))

    def test_cell_smaller_than_radius(self):
        pts = random_points(99, n=80)
        got = GridIndex(pts, cell=0.07).all_pairs_within(0.33)
        assert np.array_equal(got, all_pairs_within_reference(pts, 0.33))


# ---------------------------------------------------------------------------
# ΘALG phases (Yao cone selection + in-degree pruning)
# ---------------------------------------------------------------------------


class TestThetaEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_yao_phase1(self, seed):
        pts = random_points(seed)
        theta = math.pi / (5 + seed % 5)
        d = max_range_for_connectivity(pts, slack=1.2)
        got = yao_out_edges(pts, theta, d)
        want = yao_out_edges_reference(pts, theta, d)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_algorithm(self, seed):
        pts = random_points(seed, n=50)
        theta = math.pi / 9
        d = max_range_for_connectivity(pts, slack=1.3)
        topo = theta_algorithm(pts, theta, d)
        yao_nearest, admitted, kept = theta_edges_reference(pts, theta, d)
        assert topo.yao_nearest == yao_nearest
        assert topo.admitted == admitted
        assert as_pair_set(topo.graph.edges) == as_pair_set(kept)

    @pytest.mark.parametrize("name", ["collinear", "lattice", "two_points"])
    def test_degenerate(self, name):
        pts = DEGENERATE_POINTS[name]
        theta = math.pi / 6
        d = float(np.ptp(pts, axis=0).max()) + 1.0
        topo = theta_algorithm(pts, theta, d)
        yao_nearest, admitted, kept = theta_edges_reference(pts, theta, d)
        assert topo.yao_nearest == yao_nearest
        assert topo.admitted == admitted
        assert as_pair_set(topo.graph.edges) == as_pair_set(kept)


# ---------------------------------------------------------------------------
# Interference sets
# ---------------------------------------------------------------------------


class TestInterferenceSetsEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random(self, seed):
        pts = random_points(seed)
        d = max_range_for_connectivity(pts)
        g = transmission_graph(pts, d)
        delta = (0.0, 0.25, 0.5, 1.0)[seed % 4]
        assert interference_sets(g, delta) == interference_sets_reference(g, delta)

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_on_theta_topology(self, seed):
        pts = random_points(seed)
        d = max_range_for_connectivity(pts, slack=1.4)
        g = theta_algorithm(pts, math.pi / 9, d).graph
        for delta in (0.0, 0.5):
            assert interference_sets(g, delta) == interference_sets_reference(g, delta)

    @pytest.mark.parametrize("name", sorted(DEGENERATE_POINTS))
    def test_degenerate(self, name):
        pts = DEGENERATE_POINTS[name]
        g = transmission_graph(pts, 1.5)
        for delta in (0.0, 0.5):
            assert interference_sets(g, delta) == interference_sets_reference(g, delta)

    def test_single_edge(self):
        g = GeometricGraph(np.array([[0.0, 0.0], [1.0, 0.0]]), np.array([[0, 1]]))
        sets = interference_sets(g, 0.5)
        assert sets == interference_sets_reference(g, 0.5)
        assert sets == [np.array([], dtype=np.intp)]

    def test_empty_graph(self):
        pts = np.array([[0.0, 0.0], [5.0, 5.0]])
        g = GeometricGraph(pts, np.empty((0, 2), dtype=np.intp))
        assert len(interference_sets(g, 0.5)) == 0
        assert interference_sets(g, 0.5) == interference_sets_reference(g, 0.5)


# ---------------------------------------------------------------------------
# Per-edge stretch gather
# ---------------------------------------------------------------------------


class TestEdgeStretchEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_sources(self, seed):
        pts = random_points(seed, n=40)
        d = max_range_for_connectivity(pts, slack=1.4)
        ref = transmission_graph(pts, d)
        sub = theta_algorithm(pts, math.pi / 9, d).graph
        sources = np.arange(len(pts))
        d_sub = shortest_path_costs(sub, weight="cost", sources=sources)
        want = max_edge_stretch_reference(d_sub, sources, ref, ref.edge_costs)
        got = energy_stretch(sub, ref).max_edge_stretch
        assert got == pytest.approx(want, rel=0, abs=0)

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_sampled_sources(self, seed):
        pts = random_points(seed, n=40)
        d = max_range_for_connectivity(pts, slack=1.4)
        ref = transmission_graph(pts, d)
        sub = theta_algorithm(pts, math.pi / 9, d).graph
        # Same sampling as _stretch(max_sources=k) with its default rng.
        k = 11
        sources = np.sort(np.random.default_rng(0).choice(len(pts), size=k, replace=False))
        d_sub = shortest_path_costs(sub, weight="cost", sources=sources)
        want = max_edge_stretch_reference(d_sub, sources, ref, ref.edge_costs)
        got = energy_stretch(sub, ref, max_sources=k).max_edge_stretch
        assert got == pytest.approx(want, rel=0, abs=0)


# ---------------------------------------------------------------------------
# Balancing decide
# ---------------------------------------------------------------------------


class TestBalancingDecideEquivalence:
    def _random_router(self, rng, n_nodes=14, n_dests=5):
        dests = sorted(rng.choice(n_nodes, size=n_dests, replace=False).tolist())
        cfg = BalancingConfig(
            threshold=float(rng.choice([0.0, 0.5, 1.0])),
            gamma=float(rng.choice([0.0, 0.1])),
            max_height=64,
        )
        router = BalancingRouter(n_nodes, dests, cfg)
        for _ in range(int(rng.integers(10, 80))):
            dest = int(rng.choice(dests))
            node = int(rng.integers(n_nodes))
            if node == dest:
                continue
            router.inject(node, dest, int(rng.integers(1, 4)))
        return router

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_contention(self, seed):
        rng = np.random.default_rng(seed)
        router = self._random_router(rng)
        n = router.n_nodes
        # Dense directed edge soup with repeated sources → contention
        # for the same buffers, exercising the sequential fallback.
        n_edges = int(rng.integers(5, 60))
        edges = rng.integers(0, n, size=(n_edges, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        costs = rng.random(len(edges)) + 0.05
        h0 = router.heights.copy()
        got = router.decide(edges, costs)
        want = balancing_decide_reference(
            h0,
            router.destinations,
            router.config.threshold,
            router.config.gamma,
            edges,
            costs,
        )
        assert got == want
        assert np.array_equal(router.heights, h0)  # decide must not mutate

    def test_no_edges(self):
        router = BalancingRouter(4, [0], BalancingConfig(1.0, 0.0, 8))
        assert router.decide(np.empty((0, 2), dtype=np.intp), np.empty(0)) == []
