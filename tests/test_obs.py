"""Tests for repro.obs: tracer, metrics, StepSeries, export, report."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.obs import metrics, trace
from repro.obs.metrics import StepSeries
from repro.obs.report import phase_breakdown_rows, render_report, series_summary_rows
from repro.sim.engine import SimulationEngine
from repro.sim.stats import RoutingStats


@pytest.fixture(autouse=True)
def _obs_off_after():
    """Never leak an enabled tracer/registry into other tests."""
    yield
    obs.disable()


def _line_graph_run(*, success_fn=None, duration=30, drain=30):
    """A 3-node path carrying one stream, as a tiny engine workload."""
    edges = np.array([(0, 1), (1, 0), (1, 2), (2, 1)], dtype=np.intp)
    costs = np.ones(len(edges))
    router = BalancingRouter(3, [2], BalancingConfig(0.0, 0.0, 8))
    engine = SimulationEngine(
        router,
        lambda t: (edges, costs),
        lambda t: [(0, 2, 1)],
        success_fn=success_fn,
    )
    return engine.run(duration, drain=drain), router


class TestTracer:
    def test_disabled_span_is_noop_singleton(self):
        assert trace.active() is None
        sp = trace.span("x", step=1)
        assert sp is trace.NOOP_SPAN
        with sp:
            sp.set(late=2)  # accepted and dropped

    def test_spans_record_events(self):
        tracer = trace.enable(fresh=True)
        with trace.span("alpha", k=1):
            with trace.span("beta"):
                pass
        events = tracer.events()
        assert [e["name"] for e in events] == ["beta", "alpha"]  # exit order
        assert events[1]["args"] == {"k": 1}
        assert all(e["dur_ns"] >= 0 for e in events)
        assert all(e["pid"] == tracer.pid for e in events)

    def test_span_set_attaches_args(self):
        tracer = trace.enable(fresh=True)
        with trace.span("work") as sp:
            sp.set(result=42)
        assert tracer.events()[-1]["args"]["result"] == 42

    def test_ring_bound_drops_oldest(self):
        tracer = trace.Tracer(capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}")
        assert len(tracer.events()) == 4
        assert tracer.total_appended == 10
        assert tracer.dropped == 6
        assert tracer.events()[0]["name"] == "e6"

    def test_events_since_marker(self):
        tracer = trace.enable(fresh=True)
        tracer.instant("before")
        mark = tracer.total_appended
        tracer.instant("after1")
        tracer.instant("after2")
        names = [e["name"] for e in tracer.events_since(mark)]
        assert names == ["after1", "after2"]
        assert tracer.events_since(tracer.total_appended) == []

    def test_ingest_foreign_events(self):
        tracer = trace.enable(fresh=True)
        n = tracer.ingest([{"name": "w", "ts_ns": 1, "dur_ns": 2, "pid": 999, "args": {}}])
        assert n == 1
        assert tracer.events()[-1]["pid"] == 999

    def test_enable_idempotent_and_fresh(self):
        t1 = trace.enable()
        assert trace.enable() is t1
        t2 = trace.enable(fresh=True)
        assert t2 is not t1
        trace.disable()
        assert trace.active() is None

    def test_chrome_trace_format(self, tmp_path):
        tracer = trace.enable(fresh=True)
        with trace.span("phase", n=3):
            pass
        path = trace.write_chrome_trace(tracer.events(), tmp_path / "t.json")
        doc = json.loads(path.read_text())
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X"
        assert ev["name"] == "phase"
        assert ev["pid"] == ev["tid"] == tracer.pid
        assert ev["dur"] == pytest.approx(tracer.events()[0]["dur_ns"] / 1000.0)
        assert ev["args"] == {"n": 3}

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = trace.enable(fresh=True)
        tracer.instant("m", tag="x")
        path = trace.write_jsonl(tracer.events(), tmp_path / "t.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == tracer.events()


class TestMetrics:
    def test_disabled_by_default(self):
        assert metrics.active() is None

    def test_counter_gauge_histogram(self):
        reg = metrics.MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(3)
        reg.gauge("g").set(1)
        reg.histogram("h").observe(2.0)
        reg.histogram("h").observe(4.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3.5
        assert snap["gauges"]["g"] == {"value": 1.0, "max": 3.0}
        assert snap["histograms"]["h"]["mean"] == 3.0
        assert snap["histograms"]["h"]["count"] == 2

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            metrics.Counter("c").inc(-1)


class TestStepSeries:
    def test_length_equals_steps_and_reconciles(self):
        """Satellite: len(series) == steps, sums match final RoutingStats."""
        obs.enable(fresh=True)
        result, router = _line_graph_run()
        series = result.series
        assert series is not None
        assert len(series) == result.steps == 60
        final = router.stats.to_dict()
        assert series.reconcile(final) == []
        # Per-step deltas telescope exactly to the finals.
        deltas = series.deltas()
        assert int(deltas["delivered"].sum()) == router.stats.delivered
        assert int(deltas["dropped"].sum()) == router.stats.dropped
        assert int(deltas["attempts"].sum()) == router.stats.attempts
        assert router.stats.delivered > 0

    def test_reconciles_with_interference_failures(self):
        obs.enable(fresh=True)
        fail_everything = lambda txs: np.zeros(len(txs), dtype=bool)  # noqa: E731
        result, router = _line_graph_run(success_fn=fail_everything)
        assert router.stats.interference_failures > 0
        assert result.series.reconcile(router.stats.to_dict()) == []

    def test_explicit_series_without_tracing(self):
        series = StepSeries()
        edges = np.array([(0, 1), (1, 0)], dtype=np.intp)
        router = BalancingRouter(2, [1], BalancingConfig(0.0, 0.0, 8))
        engine = SimulationEngine(
            router,
            lambda t: (edges, np.ones(2)),
            lambda t: [(0, 1, 1)],
            step_series=series,
        )
        result = engine.run(10, drain=5)
        assert trace.active() is None  # tracing never turned on
        assert result.series is series
        assert len(series) == 15

    def test_mismatch_detected(self):
        obs.enable(fresh=True)
        result, router = _line_graph_run(duration=10, drain=0)
        final = router.stats.to_dict()
        final["delivered"] += 1
        assert any("delivered" in p for p in result.series.reconcile(final))

    def test_to_dict_from_dict_roundtrip(self):
        obs.enable(fresh=True)
        result, _ = _line_graph_run(duration=10, drain=0)
        payload = result.series.to_dict()
        clone = StepSeries.from_dict(payload)
        assert len(clone) == len(result.series)
        for name, col in clone.arrays().items():
            assert np.array_equal(col, result.series.arrays()[name]), name

    def test_from_dict_rejects_ragged(self):
        with pytest.raises(ValueError):
            StepSeries.from_dict({"steps": 2, "series": {"delivered": [1]}})

    def test_gauges_track_buffer_occupancy(self):
        obs.enable(fresh=True)
        result, router = _line_graph_run()
        arr = result.series.arrays()
        assert arr["max_buffer_height"].max() == router.stats.max_buffer_height
        assert arr["total_buffer"][-1] == router.total_packets()

    def test_run_registered_with_tracer(self):
        tracer = obs.enable(fresh=True)
        _line_graph_run(duration=5, drain=0)
        (rec,) = tracer.series_records()
        assert rec["name"].endswith("BalancingRouter")
        assert rec["steps"] == 5
        assert rec["final_stats"]["steps"] == 5


class TestExportAndReport:
    def test_export_requires_enabled(self, tmp_path):
        with pytest.raises(RuntimeError):
            obs.export(tmp_path)

    def test_export_writes_all_artifacts(self, tmp_path):
        obs.enable(fresh=True)
        _line_graph_run(duration=5, drain=0)
        paths = obs.export(tmp_path)
        for key in ("jsonl", "chrome", "series", "metrics"):
            assert paths[key].is_file(), key
        doc = json.loads((tmp_path / "series.json").read_text())
        assert doc["schema"] == obs.SERIES_SCHEMA
        assert len(doc["runs"]) == 1
        snap = json.loads((tmp_path / "metrics.json").read_text())
        assert snap["counters"]["engine.steps"] == 5.0
        assert snap["counters"]["balancing.steps"] == 5.0

    def test_phase_breakdown_aggregates(self):
        events = [
            {"name": "a", "ts_ns": 0, "dur_ns": 3000, "pid": 1, "args": {}},
            {"name": "a", "ts_ns": 0, "dur_ns": 1000, "pid": 2, "args": {}},
            {"name": "b", "ts_ns": 0, "dur_ns": 4000, "pid": 1, "args": {}},
        ]
        rows = phase_breakdown_rows(events)
        by_name = {r["span"]: r for r in rows}
        assert by_name["a"]["calls"] == 2
        assert by_name["a"]["procs"] == 2
        assert by_name["a"]["max_us"] == 3.0
        assert by_name["b"]["share"] == "50.0%"

    def test_series_summary_and_merge(self):
        obs.enable(fresh=True)
        _line_graph_run(duration=5, drain=0)
        _line_graph_run(duration=7, drain=0)
        runs = trace.active().series_records()
        rows, merged = series_summary_rows(runs)
        assert [r["steps"] for r in rows] == [5, 7]
        assert all(r["reconciled"] for r in rows)
        assert merged.steps == 12
        assert merged.delivered == rows[0]["delivered"] + rows[1]["delivered"]

    def test_render_report_end_to_end(self, tmp_path):
        obs.enable(fresh=True)
        _line_graph_run(duration=5, drain=0)
        obs.export(tmp_path)
        text = render_report(tmp_path)
        assert "phase-time breakdown" in text
        assert "per-step series summary" in text
        assert "engine.step" in text
        assert "TOTAL (merged)" in text

    def test_render_report_empty_dir(self, tmp_path):
        text = render_report(tmp_path)
        assert "no trace.jsonl" in text
        assert "no series.json" in text


class TestInstrumentationCoverage:
    def test_mac_spans_and_counters(self):
        from repro.core.interference_mac import RandomActivationMAC
        from repro.geometry.pointsets import uniform_points
        from repro.graphs.transmission import max_range_for_connectivity, transmission_graph

        pts = uniform_points(30, rng=0)
        g = transmission_graph(pts, max_range_for_connectivity(pts, slack=1.5))
        tracer = obs.enable(fresh=True)
        mac = RandomActivationMAC(g, 0.5, rng=1)
        for _ in range(20):
            edges, costs = mac.active_edges()
        names = {e["name"] for e in tracer.events()}
        assert "mac.activate" in names
        assert metrics.active().snapshot()["counters"]["mac.activation_rounds"] == 20.0

    def test_protocol_round_spans_and_seconds(self):
        from repro.geometry.pointsets import uniform_points
        from repro.graphs.transmission import max_range_for_connectivity
        from repro.localsim.runtime import LocalRuntime

        pts = uniform_points(20, rng=3)
        d = max_range_for_connectivity(pts, slack=1.4)
        tracer = obs.enable(fresh=True)
        rt = LocalRuntime(pts, math.pi / 9, d)
        rt.run()
        names = [e["name"] for e in tracer.events()]
        for round_name in ("protocol.round1", "protocol.round2", "protocol.round3"):
            assert round_name in names
        assert set(rt.trace.round_seconds) == {"round1", "round2", "round3"}
        assert all(v >= 0 for v in rt.trace.round_seconds.values())
        assert rt.trace.as_dict()["round1_seconds"] == rt.trace.round_seconds["round1"]


class TestRoutingStatsHelpers:
    def test_to_dict_native_types_and_roundtrip(self):
        st = RoutingStats()
        st.record_injection(5, 4)
        st.record_attempt(1.5, True)
        st.record_attempt(2.0, False)
        st.record_delivery(1)
        st.end_step(3, 1)
        d = st.to_dict()
        assert isinstance(d["delivered"], int)
        assert d["dropped"] == 1
        assert d["energy_attempted"] == 3.5
        assert "delivered_trace" not in d
        clone = RoutingStats.from_dict(st.to_dict(include_trace=True))
        assert clone.to_dict() == d
        assert clone.delivered_trace == st.delivered_trace

    def test_merge_sums_and_maxes(self):
        a, b = RoutingStats(), RoutingStats()
        a.record_injection(3, 3)
        a.record_attempt(1.0, True)
        a.end_step(5, 0)
        b.record_injection(2, 1)
        b.record_attempt(2.0, False)
        b.end_step(9, 0)
        out = a.merge(b)
        assert out is a
        assert a.injected == 5
        assert a.dropped == 1
        assert a.attempts == 2
        assert a.energy_attempted == 3.0
        assert a.steps == 2
        assert a.max_buffer_height == 9
        assert a.delivered_trace == [0, 0]
