"""Campaign store diff: content-digest join, statuses, exit semantics."""

import json

import pytest

from repro.campaign.diff import DiffError, diff_records, run_diff
from repro.campaign.spec import load_spec
from repro.campaign.store import CampaignStore, StoreError

SPEC_DOC = {
    "schema": "repro-campaign-spec/v1",
    "name": "diffme",
    "profile": "quick",
    "grid": {"claim": ["e1"], "n": [24, 32], "seed": [0, 1]},
}


@pytest.fixture
def cells(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_DOC))
    return load_spec(path).cells()


def record(cell, *, passed=True, runtime=1.0, failures=()):
    return {
        "cell": cell.cell_id,
        "claim": cell.claim,
        "profile": "quick",
        "seed": cell.seed,
        "overrides": dict(cell.overrides),
        "passed": passed,
        "failures": list(failures),
        "n_rows": 3,
        "runtime_seconds": runtime,
        "rows": [],
    }


def make_stores(tmp_path, cells, recs_a, recs_b):
    path = tmp_path / "spec.json"
    spec = load_spec(path)
    sa = CampaignStore.create(tmp_path / "a", spec)
    sb = CampaignStore.create(tmp_path / "b", spec)
    for rec in recs_a:
        sa.write_cell(rec)
    for rec in recs_b:
        sb.write_cell(rec)
    return str(tmp_path / "a"), str(tmp_path / "b")


class TestDiffRecords:
    def test_statuses(self, cells):
        c0, c1, c2, c3 = cells
        rows = diff_records(
            [record(c0), record(c1), record(c3)],
            [record(c0), record(c1, passed=False, failures=["x"]), record(c2)],
        )
        by_cell = {r["cell"]: r["status"] for r in rows}
        assert by_cell[c0.cell_id] == "same"
        assert by_cell[c1.cell_id] == "regressed"
        assert by_cell[c2.cell_id] == "only_b"
        assert by_cell[c3.cell_id] == "only_a"

    def test_fail_to_pass_is_improved(self, cells):
        c = cells[0]
        (row,) = diff_records([record(c, passed=False)], [record(c)])
        assert row["status"] == "improved"

    def test_metric_drift_lower_is_better(self, cells):
        c = cells[0]
        (row,) = diff_records(
            [record(c, runtime=1.0)],
            [record(c, runtime=1.5)],
            metrics=["runtime_seconds"],
            tolerance=0.2,
        )
        assert row["status"] == "regressed"
        assert row["runtime_seconds_drift"] == pytest.approx(0.5)
        (row,) = diff_records(
            [record(c, runtime=1.0)],
            [record(c, runtime=0.5)],
            metrics=["runtime_seconds"],
            tolerance=0.2,
        )
        assert row["status"] == "improved"

    def test_metric_within_tolerance_is_same(self, cells):
        c = cells[0]
        (row,) = diff_records(
            [record(c, runtime=1.0)],
            [record(c, runtime=1.05)],
            metrics=["runtime_seconds"],
            tolerance=0.1,
        )
        assert row["status"] == "same"

    def test_plus_prefix_flips_direction(self, cells):
        c = cells[0]
        (row,) = diff_records(
            [record(c)], [dict(record(c), n_rows=1)], metrics=["+n_rows"]
        )
        assert row["status"] == "regressed"

    def test_pass_flip_dominates_metric_gain(self, cells):
        c = cells[0]
        (row,) = diff_records(
            [record(c, runtime=2.0)],
            [record(c, passed=False, runtime=0.1)],
            metrics=["runtime_seconds"],
        )
        assert row["status"] == "regressed"

    def test_non_numeric_metric_errors(self, cells):
        c = cells[0]
        with pytest.raises(DiffError, match="not numeric"):
            diff_records([record(c)], [record(c)], metrics=["claim"])


class TestRunDiff:
    def test_regression_count_and_render(self, tmp_path, cells):
        a, b = make_stores(
            tmp_path,
            cells,
            [record(c) for c in cells],
            [record(cells[0]), record(cells[1], passed=False)]
            + [record(c) for c in cells[2:]],
        )
        text, n = run_diff(a, b)
        assert n == 1 and "regressed" in text
        text, n = run_diff(a, b, fmt="json")
        assert {r["status"] for r in json.loads(text)} == {"same", "regressed"}

    def test_only_changed_filter(self, tmp_path, cells):
        a, b = make_stores(
            tmp_path, cells, [record(c) for c in cells], [record(c) for c in cells]
        )
        text, n = run_diff(a, b, only_changed=True)
        assert n == 0 and text == "(no cells changed)"

    def test_missing_store_raises(self, tmp_path, cells):
        a, _ = make_stores(tmp_path, cells, [], [])
        with pytest.raises(StoreError, match="no campaign store"):
            run_diff(a, str(tmp_path / "nowhere"))


class TestCLI:
    def run_cli(self, *argv):
        from repro.__main__ import main

        return main(["campaign", "diff", *argv])

    def test_exit_codes(self, tmp_path, cells, capsys):
        a, b = make_stores(
            tmp_path,
            cells,
            [record(c) for c in cells],
            [record(cells[0], passed=False)] + [record(c) for c in cells[1:]],
        )
        assert self.run_cli(a, b) == 1
        out = capsys.readouterr()
        assert "regressed" in out.out and "1 cell(s) regressed" in out.err
        assert self.run_cli(a, a) == 0
        assert self.run_cli(a, str(tmp_path / "nope")) == 2
        assert self.run_cli(a, b, "--metric", "claim") == 2

    def test_metric_and_format_flags(self, tmp_path, cells, capsys):
        a, b = make_stores(
            tmp_path,
            cells,
            [record(c, runtime=1.0) for c in cells],
            [record(c, runtime=3.0) for c in cells],
        )
        code = self.run_cli(
            a, b, "--metric", "runtime_seconds", "--tolerance", "0.5",
            "--format", "csv", "--only-changed",
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "runtime_seconds_drift" in out.splitlines()[0]
