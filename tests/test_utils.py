"""Tests for :mod:`repro.utils` — union-find, RNG plumbing, validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.unionfind import UnionFind
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert len(uf) == 5

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.n_components == 3

    def test_redundant_union_returns_false(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 3

    def test_connected_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_find_is_canonical(self):
        uf = UnionFind(6)
        uf.union(2, 3)
        uf.union(3, 4)
        assert uf.find(2) == uf.find(4)

    def test_component_labels(self):
        uf = UnionFind(4)
        uf.union(0, 3)
        labels = uf.component_labels()
        assert labels[0] == labels[3]
        assert labels[1] != labels[0]
        assert labels[1] != labels[2]

    def test_zero_elements(self):
        uf = UnionFind(0)
        assert uf.n_components == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    def test_matches_naive_partition(self, pairs):
        """Property: components match a naive BFS partition."""
        n = 20
        uf = UnionFind(n)
        adj = {i: set() for i in range(n)}
        for a, b in pairs:
            uf.union(a, b)
            adj[a].add(b)
            adj[b].add(a)
        # Naive component count by BFS.
        seen: set[int] = set()
        comps = 0
        for s in range(n):
            if s in seen:
                continue
            comps += 1
            stack = [s]
            while stack:
                v = stack.pop()
                if v in seen:
                    continue
                seen.add(v)
                stack.extend(adj[v] - seen)
        assert uf.n_components == comps


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_seed_sequence_accepted(self):
        g = as_rng(np.random.SeedSequence(1))
        assert isinstance(g, np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_rng("not a seed")

    def test_spawn_count(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_spawn_deterministic(self):
        a1, _ = spawn_rngs(7, 2)
        a2, _ = spawn_rngs(7, 2)
        assert np.array_equal(a1.random(5), a2.random(5))

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)

    def test_check_nonnegative_accepts_zero(self):
        assert check_nonnegative("x", 0) == 0.0

    def test_check_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.001)

    def test_check_in_range_inclusive_default(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=(False, True))

    def test_check_in_range_message_names_variable(self):
        with pytest.raises(ValueError, match="theta"):
            check_in_range("theta", 5.0, 0.0, 1.0)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)
