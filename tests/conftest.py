"""Shared fixtures for the test suite.

Every stochastic fixture is seeded so failures reproduce; tests that
want fresh randomness spawn children from the ``rng`` fixture.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.theta import theta_algorithm
from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity, transmission_graph


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for a test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_points() -> np.ndarray:
    """60 uniform points in the unit square (session-cached)."""
    return uniform_points(60, rng=7)


@pytest.fixture(scope="session")
def small_world(small_points):
    """(points, D, G*, ΘALG topology) built once per session."""
    d = max_range_for_connectivity(small_points, slack=1.5)
    gstar = transmission_graph(small_points, d)
    topo = theta_algorithm(small_points, math.pi / 9, d)
    return small_points, d, gstar, topo
