"""Tests for table rendering and fitting helpers."""

from __future__ import annotations


import numpy as np
import pytest

from repro.analysis.tables import fit_log_slope, geometric_mean, render_table


class TestRenderTable:
    def test_empty(self):
        assert "(no rows)" in render_table([])

    def test_title(self):
        out = render_table([{"a": 1}], title="My Table")
        assert out.startswith("== My Table ==")

    def test_alignment_and_columns(self):
        rows = [{"name": "x", "value": 1.5}, {"name": "longer", "value": 22}]
        out = render_table(rows)
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_union_of_keys(self):
        rows = [{"a": 1}, {"b": 2}]
        out = render_table(rows)
        assert "a" in out and "b" in out

    def test_bool_formatting(self):
        out = render_table([{"ok": True}, {"ok": False}])
        assert "yes" in out and "no" in out

    def test_float_formatting(self):
        out = render_table([{"v": 0.000123}, {"v": 123456.0}, {"v": float("inf")}])
        assert "0.000123" in out
        assert "1.23e+05" in out
        assert "inf" in out

    def test_missing_cells_blank(self):
        out = render_table([{"a": 1, "b": 2}, {"a": 3}])
        assert out  # renders without error


class TestFitLogSlope:
    def test_recovers_synthetic(self):
        ns = np.array([10, 100, 1000, 10000])
        ys = 3.0 * np.log(ns) + 2.0
        a, b = fit_log_slope(ns, ys)
        assert a == pytest.approx(3.0)
        assert b == pytest.approx(2.0)

    def test_flat_data_zero_slope(self):
        ns = np.array([10, 100, 1000])
        ys = np.array([5.0, 5.0, 5.0])
        a, _ = fit_log_slope(ns, ys)
        assert a == pytest.approx(0.0, abs=1e-9)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_log_slope([10], [1.0])


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_invariance_to_order(self):
        vals = [0.5, 2.0, 8.0]
        assert geometric_mean(vals) == pytest.approx(geometric_mean(vals[::-1]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
