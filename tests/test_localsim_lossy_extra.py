"""Extra lossy-protocol coverage: top-level exports and report math."""

from __future__ import annotations

import math

import pytest

from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity
from repro.localsim import LossyProtocolReport, lossy_protocol_run


class TestExports:
    def test_importable_from_localsim(self):
        assert callable(lossy_protocol_run)
        assert LossyProtocolReport.__dataclass_fields__


class TestReportMath:
    def test_recall_empty_ideal(self):
        rep = LossyProtocolReport(
            n_nodes=1,
            loss_prob=0.0,
            retries=0,
            transmissions=0,
            ideal_edges=0,
            built_edges=0,
            missing_edges=0,
            spurious_edges=0,
            connected=True,
        )
        assert rep.edge_recall == 1.0

    def test_as_dict_roundtrip_fields(self):
        pts = uniform_points(20, rng=0)
        d = max_range_for_connectivity(pts, slack=1.3)
        _, rep = lossy_protocol_run(pts, math.pi / 9, d, loss_prob=0.1, retries=1, rng=0)
        dd = rep.as_dict()
        assert dd["n_nodes"] == 20.0
        assert dd["edge_recall"] == pytest.approx(rep.edge_recall)
        assert set(dd) >= {
            "loss_prob",
            "retries",
            "transmissions",
            "missing_edges",
            "spurious_edges",
            "connected",
        }

    def test_deterministic_given_seed(self):
        pts = uniform_points(25, rng=1)
        d = max_range_for_connectivity(pts, slack=1.3)
        _, a = lossy_protocol_run(pts, math.pi / 9, d, loss_prob=0.3, retries=1, rng=7)
        _, b = lossy_protocol_run(pts, math.pi / 9, d, loss_prob=0.3, retries=1, rng=7)
        assert a == b
