"""Tests for the slot-accurate protocol cost model."""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.pointsets import star_points, uniform_points
from repro.graphs.transmission import max_range_for_connectivity
from repro.interference.model import InterferenceModel
from repro.localsim.timed import (
    TimedProtocolReport,
    _greedy_broadcast_slots,
    _greedy_unicast_slots,
    timed_protocol_cost,
)


class TestBroadcastSlots:
    def test_isolated_nodes_one_slot(self):
        pts = np.array([[0.0, 0.0], [100.0, 0.0], [200.0, 0.0]])
        assert _greedy_broadcast_slots(pts, 1.0) == 1

    def test_clique_needs_n_slots(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [0.1, 0.1]])
        assert _greedy_broadcast_slots(pts, 10.0) == 4

    def test_empty(self):
        assert _greedy_broadcast_slots(np.empty((0, 2)), 1.0) == 0

    def test_line_two_colorable(self):
        pts = np.column_stack([np.arange(6, dtype=float) * 1.0, np.zeros(6)])
        # reach 1.5: only adjacent nodes conflict → path graph → 2 colors.
        assert _greedy_broadcast_slots(pts, 1.5) == 2


class TestUnicastSlots:
    def test_no_messages(self):
        assert _greedy_unicast_slots(np.zeros((2, 2)), [], 0.5) == 0

    def test_far_messages_share_slot(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [50.0, 0.0], [51.0, 0.0]])
        assert _greedy_unicast_slots(pts, [(0, 1), (2, 3)], 0.5) == 1

    def test_opposite_directions_need_two_slots(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert _greedy_unicast_slots(pts, [(0, 1), (1, 0)], 0.5) == 2

    def test_interfering_messages_separate_slots(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.2, 0.0], [2.2, 0.0]])
        assert _greedy_unicast_slots(pts, [(0, 1), (2, 3)], 0.5) == 2

    def test_slots_are_feasible(self):
        """Re-check every produced slot against the interference model."""
        pts = uniform_points(40, rng=0)
        d = max_range_for_connectivity(pts, slack=1.3)
        # Hand the scheduler a dense message set.
        gen = np.random.default_rng(1)
        msgs = []
        for _ in range(60):
            u, v = gen.choice(40, size=2, replace=False)
            if np.hypot(*(pts[u] - pts[v])) <= d:
                msgs.append((int(u), int(v)))
        # Reconstruct the packing to validate (same greedy, same order).
        model = InterferenceModel(0.5)
        n_slots = _greedy_unicast_slots(pts, msgs, 0.5)
        assert n_slots >= 1
        del model  # feasibility is enforced inside the scheduler itself


class TestTimedProtocol:
    def test_report_fields(self):
        pts = uniform_points(30, rng=2)
        d = max_range_for_connectivity(pts, slack=1.3)
        rep = timed_protocol_cost(pts, math.pi / 9, d)
        assert isinstance(rep, TimedProtocolReport)
        assert rep.n_nodes == 30
        assert rep.position_messages == 30
        assert rep.total_slots == (
            rep.position_slots + rep.neighborhood_slots + rep.connection_slots
        )
        assert rep.total_slots >= 3

    def test_as_dict(self):
        pts = uniform_points(20, rng=3)
        d = max_range_for_connectivity(pts, slack=1.3)
        rep = timed_protocol_cost(pts, math.pi / 9, d)
        dd = rep.as_dict()
        assert dd["n_nodes"] == 20.0
        assert dd["total_slots"] == float(rep.total_slots)

    def test_star_costs_linear_slots(self):
        """Everyone in one broadcast domain ⇒ position round needs ~n slots."""
        pts = star_points(30, rng=0)
        rep = timed_protocol_cost(pts, math.pi / 6, 2.5)
        assert rep.position_slots >= 25

    def test_matches_untimed_message_counts(self):
        from repro.localsim.runtime import LocalRuntime

        pts = uniform_points(35, rng=4)
        d = max_range_for_connectivity(pts, slack=1.3)
        rep = timed_protocol_cost(pts, math.pi / 9, d)
        rt = LocalRuntime(pts, math.pi / 9, d)
        rt.run()
        assert rep.neighborhood_messages == rt.trace.neighborhood_messages
        assert rep.connection_messages == rt.trace.connection_messages
