"""Tests for θ-path replacement (Theorem 2.8 / Lemma 2.9 machinery)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.theta import theta_algorithm
from repro.core.theta_paths import path_congestion, replace_schedule_edges, theta_path
from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity, transmission_graph
from repro.interference.model import InterferenceModel


class TestThetaPath:
    def test_n_edge_is_its_own_path(self, small_world):
        _, _, _, topo = small_world
        u, v = (int(x) for x in topo.graph.edges[0])
        assert theta_path(topo, u, v) == [u, v]

    def test_endpoints_correct(self, small_world):
        _, _, gstar, topo = small_world
        for u, v in gstar.edges[:50]:
            p = theta_path(topo, int(u), int(v))
            assert p[0] == u and p[-1] == v

    def test_all_hops_are_n_edges(self, small_world):
        _, _, gstar, topo = small_world
        cache: dict = {}
        for u, v in gstar.edges:
            p = theta_path(topo, int(u), int(v), _cache=cache)
            for a, b in zip(p[:-1], p[1:]):
                assert topo.graph.has_edge(a, b)

    def test_out_of_range_rejected(self, small_world):
        pts, d, _, topo = small_world
        # Find a pair farther than D.
        from scipy.spatial.distance import pdist, squareform

        dm = squareform(pdist(pts))
        i, j = np.unravel_index(np.argmax(dm), dm.shape)
        if dm[i, j] > d:
            with pytest.raises(ValueError):
                theta_path(topo, int(i), int(j))

    def test_trivial_same_node(self, small_world):
        _, _, _, topo = small_world
        assert theta_path(topo, 3, 3) == [3]

    def test_cost_of_path_bounded(self, small_world):
        """The θ-path energy is within a constant of the direct edge
        (the inequality Theorem 2.2/2.8 rest on)."""
        _, _, gstar, topo = small_world
        cache: dict = {}
        for (u, v), c in zip(gstar.edges, gstar.edge_costs):
            p = theta_path(topo, int(u), int(v), _cache=cache)
            path_cost = sum(topo.graph.cost(a, b) for a, b in zip(p[:-1], p[1:]))
            assert path_cost <= 4.0 * c + 1e-9

    @given(st.integers(10, 70), st.integers(0, 8))
    @settings(max_examples=15, deadline=None)
    def test_property_terminates_everywhere(self, n, seed):
        pts = uniform_points(n, rng=seed)
        d = max_range_for_connectivity(pts, slack=1.4)
        gstar = transmission_graph(pts, d)
        topo = theta_algorithm(pts, math.pi / 9, d)
        cache: dict = {}
        for u, v in gstar.edges:
            p = theta_path(topo, int(u), int(v), _cache=cache)
            assert p[0] == u and p[-1] == v
            assert len(p) >= 2


class TestLemma29:
    def test_congestion_bound_on_noninterfering_sets(self, small_world):
        """N-edge congestion ≤ 6 for pairwise non-interfering G* edges."""
        pts, _, gstar, topo = small_world
        model = InterferenceModel(0.5)
        gen = np.random.default_rng(0)
        for _ in range(10):
            order = gen.permutation(gstar.n_edges)
            chosen: list[int] = []
            for e in order:
                if all(
                    not model.pair_interferes(
                        pts, tuple(gstar.edges[e]), tuple(gstar.edges[f])
                    )
                    for f in chosen
                ):
                    chosen.append(int(e))
                if len(chosen) >= 16:
                    break
            if not chosen:
                continue
            paths = replace_schedule_edges(topo, gstar.edges[chosen])
            cong = path_congestion(topo, paths)
            assert max(cong.values(), default=0) <= 6

    def test_congestion_counts_correct(self, small_world):
        _, _, gstar, topo = small_world
        paths = replace_schedule_edges(topo, gstar.edges[:5])
        cong = path_congestion(topo, paths)
        total_hops = sum(len(p) - 1 for p in paths)
        assert sum(cong.values()) == total_hops

    def test_congestion_rejects_non_edges(self, small_world):
        _, _, _, topo = small_world
        with pytest.raises(ValueError):
            # A fabricated path using a non-existent edge.
            non_edge = None
            n = topo.graph.n_nodes
            for a in range(n):
                for b in range(a + 1, n):
                    if not topo.graph.has_edge(a, b):
                        non_edge = [a, b]
                        break
                if non_edge:
                    break
            path_congestion(topo, [non_edge])
