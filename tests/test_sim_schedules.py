"""Tests for schedule objects and validation."""

from __future__ import annotations

import pytest

from repro.sim.packets import Injection, Transmission
from repro.sim.schedules import (
    Schedule,
    schedules_conflict_free,
    validate_schedule,
    witness_buffer_usage,
)


def simple_schedule() -> Schedule:
    return Schedule(inject_time=0, hops=((((0, 1)), 1), (((1, 2)), 2)))


class TestPackets:
    def test_injection_fields(self):
        inj = Injection(time=3, node=0, dest=5, count=2)
        assert inj.count == 2

    def test_injection_rejects_zero_count(self):
        with pytest.raises(ValueError):
            Injection(time=0, node=0, dest=1, count=0)

    def test_injection_rejects_self_destination(self):
        with pytest.raises(ValueError):
            Injection(time=0, node=2, dest=2)

    def test_transmission_fields(self):
        tx = Transmission(src=0, dst=1, dest=4, cost=0.5)
        assert tx.cost == 0.5


class TestSchedule:
    def test_accessors(self):
        s = simple_schedule()
        assert s.source == 0
        assert s.dest == 2
        assert s.path == [0, 1, 2]
        assert s.n_hops == 2
        assert s.finish_time == 2

    def test_empty_hops_rejected(self):
        with pytest.raises(ValueError):
            Schedule(inject_time=0, hops=())

    def test_cost(self):
        s = simple_schedule()
        assert s.cost(lambda e, t: 2.0) == 4.0


class TestValidate:
    def test_valid_schedule_passes(self):
        validate_schedule(simple_schedule())

    def test_broken_path_rejected(self):
        s = Schedule(inject_time=0, hops=(((0, 1), 1), ((2, 3), 2)))
        with pytest.raises(ValueError, match="path broken"):
            validate_schedule(s)

    def test_non_increasing_times_rejected(self):
        s = Schedule(inject_time=0, hops=(((0, 1), 1), ((1, 2), 1)))
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_schedule(s)

    def test_move_at_injection_time_rejected(self):
        s = Schedule(inject_time=1, hops=(((0, 1), 1),))
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_schedule(s)

    def test_self_loop_rejected(self):
        s = Schedule(inject_time=0, hops=(((1, 1), 1),))
        with pytest.raises(ValueError, match="self-loop"):
            validate_schedule(s)

    def test_activity_oracle_consulted(self):
        s = simple_schedule()
        validate_schedule(s, active_fn=lambda e, t: True)
        with pytest.raises(ValueError, match="not active"):
            validate_schedule(s, active_fn=lambda e, t: t != 2)


class TestConflictFree:
    def test_disjoint_schedules_ok(self):
        a = Schedule(0, (((0, 1), 1),))
        b = Schedule(0, (((2, 3), 1),))
        assert schedules_conflict_free([a, b])

    def test_same_edge_same_time_conflicts(self):
        a = Schedule(0, (((0, 1), 1),))
        b = Schedule(0, (((0, 1), 1),))
        assert not schedules_conflict_free([a, b])

    def test_same_edge_different_time_ok(self):
        a = Schedule(0, (((0, 1), 1),))
        b = Schedule(0, (((0, 1), 2),))
        assert schedules_conflict_free([a, b])

    def test_opposite_directions_ok(self):
        """One packet per direction per step is allowed by the model."""
        a = Schedule(0, (((0, 1), 1),))
        b = Schedule(0, (((1, 0), 1),))
        assert schedules_conflict_free([a, b])


class TestBufferUsage:
    def test_empty(self):
        assert witness_buffer_usage([]) == 0

    def test_single_packet_uses_one(self):
        assert witness_buffer_usage([simple_schedule()]) == 1

    def test_two_packets_same_buffer_overlap(self):
        a = Schedule(0, (((0, 1), 5),))
        b = Schedule(0, (((0, 1), 6),))
        assert witness_buffer_usage([a, b]) == 2

    def test_pipelined_packets_dont_stack(self):
        """Packets flowing one hop per step occupy ≤ 1 per buffer."""
        scheds = [
            Schedule(t, (((0, 1), t + 1), ((1, 2), t + 2)))
            for t in range(5)
        ]
        assert witness_buffer_usage(scheds) == 1

    def test_departure_frees_before_arrival(self):
        """At the step a packet leaves, its slot is free for an arrival."""
        a = Schedule(0, (((0, 1), 1), ((1, 2), 2)))  # occupies Q1 during [1,2)
        b = Schedule(0, (((3, 1), 2), ((1, 2), 3)))  # arrives at 1 at t=2
        assert witness_buffer_usage([a, b]) == 1
