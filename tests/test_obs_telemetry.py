"""Tests for repro.obs.telemetry: cross-process spans, samples, OpenMetrics.

The satellite acceptance criteria live here: OpenMetrics text must
round-trip counter/gauge/histogram values exactly, and a traced
2-worker :class:`TileWorkerPool` batch must land spans from every
worker pid on the parent's tracer with monotonic per-track timestamps.
"""

from __future__ import annotations

import io
import json
import math
import os

import numpy as np
import pytest

from repro import (
    DynamicInterference,
    IncrementalTheta,
    max_range_for_connectivity,
    obs,
    random_event_trace,
    uniform_points,
)
from repro.obs import metrics, telemetry, trace
from repro.obs.telemetry import (
    LiveView,
    ResourceSampler,
    TelemetryWriter,
    parse_openmetrics,
    read_snapshots,
    render_snapshot,
    render_top,
    resource_sample,
    to_openmetrics,
)
from repro.parallel import TileWorkerPool

THETA = math.pi / 9


@pytest.fixture(autouse=True)
def _obs_off_after():
    """Never leak an enabled tracer/registry into other tests."""
    yield
    obs.disable()


class TestResourceSampling:
    def test_self_sample_reads_proc(self):
        s = resource_sample()
        assert s["pid"] == os.getpid()
        assert s["rss_bytes"] > 0  # Linux CI: /proc is always there
        assert s["cpu_user_s"] >= 0.0
        assert s["cpu_sys_s"] >= 0.0
        assert s["ts"] > 0

    def test_missing_pid_never_raises(self):
        s = resource_sample(2**22 + 12345)  # beyond default pid_max
        assert s["rss_bytes"] == 0
        assert s["cpu_user_s"] == 0.0

    def test_sampler_adds_uptime_arena_and_extras(self):
        class FakeArena:
            nbytes = 4096

        sampler = ResourceSampler(arena=FakeArena())
        s = sampler.sample(worker=3, batch=7)
        assert s["uptime_s"] >= 0.0
        assert s["shm_bytes"] == 4096
        assert s["worker"] == 3
        assert s["batch"] == 7

    def test_sampler_without_arena_has_no_shm_key(self):
        assert "shm_bytes" not in ResourceSampler().sample()


class TestOpenMetrics:
    def _registry_snapshot(self):
        reg = metrics.MetricsRegistry()
        reg.counter("pool.batches").inc(3)
        reg.counter("engine.steps").inc(0.125)  # exact binary fraction
        reg.gauge("pool.shm_bytes").set(1536.5)
        reg.gauge("pool.shm_bytes").set(812.25)
        reg.histogram("cell.seconds").observe(0.1)
        reg.histogram("cell.seconds").observe(7.25)
        reg.histogram("cell.seconds").observe(0.30000000000000004)
        return reg.snapshot()

    def test_round_trip_is_value_exact(self):
        """Satellite: counter/gauge/histogram values survive bit-for-bit."""
        snap = self._registry_snapshot()
        parsed = parse_openmetrics(to_openmetrics(snap))
        assert parsed == snap

    def test_round_trip_non_finite(self):
        snap = {
            "counters": {"c": math.inf},
            "gauges": {"g": {"value": math.nan, "max": math.inf}},
            "histograms": {},
        }
        parsed = parse_openmetrics(to_openmetrics(snap))
        assert parsed["counters"]["c"] == math.inf
        assert math.isnan(parsed["gauges"]["g"]["value"])
        assert parsed["gauges"]["g"]["max"] == math.inf

    def test_round_trip_empty_histogram_inf_bounds(self):
        reg = metrics.MetricsRegistry()
        reg.histogram("h")  # registered, never observed: min=+Inf, max=-Inf
        snap = reg.snapshot()
        parsed = parse_openmetrics(to_openmetrics(snap))
        assert parsed == snap
        assert parsed["histograms"]["h"]["min"] == math.inf
        assert parsed["histograms"]["h"]["max"] == -math.inf
        assert parsed["histograms"]["h"]["mean"] == 0.0

    def test_exact_name_survives_sanitization(self):
        snap = {
            "counters": {'weird.name with "quotes"\nand spaces': 2.0},
            "gauges": {},
            "histograms": {},
        }
        text = to_openmetrics(snap)
        assert 'name="weird.name with \\"quotes\\"\\nand spaces"' in text
        assert parse_openmetrics(text) == snap

    def test_text_format_shape(self):
        text = to_openmetrics(self._registry_snapshot())
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_pool_batches counter" in text
        assert "repro_pool_batches_total" in text
        assert "# TYPE repro_cell_seconds summary" in text
        assert 'repro_cell_seconds_count{name="cell.seconds"}' in text
        assert 'field="max"' in text

    def test_parse_rejects_undeclared_metric(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_openmetrics('repro_x{name="x"} 1.0\n# EOF\n')


class TestTelemetryStream:
    def test_writer_header_and_read_back(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        w = TelemetryWriter(path, interval=0.0)
        assert w.write({"kind": "campaign", "seq": 1})
        assert w.write({"kind": "campaign", "seq": 2})
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["schema"] == telemetry.TELEMETRY_SCHEMA
        snaps = read_snapshots(path)
        assert [s["seq"] for s in snaps] == [1, 2]  # header skipped

    def test_writer_throttles_and_force_overrides(self, tmp_path):
        w = TelemetryWriter(tmp_path / "t.jsonl", interval=3600.0)
        assert w.write({"seq": 1})
        assert not w.write({"seq": 2})  # inside the throttle window
        assert w.write({"seq": 3}, force=True)
        assert [s["seq"] for s in read_snapshots(w.path)] == [1, 3]
        assert w.n_written == 2

    def test_reader_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TelemetryWriter(path, interval=0.0).write({"seq": 1})
        with path.open("a") as fh:
            fh.write('{"seq": 2, "cells": {"done"')  # killed mid-line
        assert [s["seq"] for s in read_snapshots(path)] == [1]

    def test_reader_missing_file_is_empty(self, tmp_path):
        assert read_snapshots(tmp_path / "absent.jsonl") == []


SNAPSHOT = {
    "kind": "campaign",
    "ts": 1000.0,
    "name": "unit",
    "cells": {"total": 8, "done": 5, "failed": 1, "remaining": 3},
    "workers": {
        "101": {
            "cells": 3,
            "cell_seconds": 0.6,
            "rss_bytes": 50_000_000,
            "cpu_user_s": 1.0,
            "cpu_sys_s": 0.5,
        },
        "102": {"cells": 2, "cell_seconds": 0.3, "rss_bytes": 48_000_000},
    },
    "parent": {"pid": 100, "rss_bytes": 90_000_000, "cpu_user_s": 2.0, "cpu_sys_s": 0.25},
    "elapsed_s": 10.0,
    "rate_cells_per_s": 0.5,
}


class TestRendering:
    def test_render_snapshot_panel(self):
        text = render_snapshot(SNAPSHOT, title="campaign 'unit'")
        assert "campaign 'unit'" in text
        assert "5/8 done, 1 failed, 3 remaining" in text
        assert "parent pid 100" in text
        assert "rss 90.0MB" in text
        assert "workers — 2 processes" in text
        assert "101" in text and "102" in text

    def test_render_snapshot_halo_traffic_columns(self):
        # Tiled-pool workers carry halo-subscription gauges; the panel
        # must surface them (and omit the columns for plain campaigns).
        snap = json.loads(json.dumps(SNAPSHOT))
        snap["workers"]["101"].update(
            {"diffs_in": 12, "diffs_suppressed": 34, "shm_bytes": 5_000_000}
        )
        text = render_snapshot(snap)
        assert "diffs_in" in text and "diffs_suppressed" in text
        assert "12" in text and "34" in text
        assert "5.0MB" in text
        assert "diffs_in" not in render_snapshot(SNAPSHOT)

    def test_render_top_requires_store(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="store.json"):
            render_top(tmp_path)

    def test_render_top_without_snapshots(self, tmp_path):
        (tmp_path / "store.json").write_text(json.dumps({"name": "unit"}))
        text = render_top(tmp_path)
        assert "campaign 'unit'" in text
        assert "no telemetry.jsonl snapshots yet" in text

    def test_render_top_with_stream(self, tmp_path):
        (tmp_path / "store.json").write_text(json.dumps({"name": "unit"}))
        TelemetryWriter(tmp_path / "telemetry.jsonl", interval=0.0).write(SNAPSHOT)
        text = render_top(tmp_path)
        assert "5/8 done" in text
        assert "last snapshot:" in text
        assert "1 snapshots on stream" in text


class TestLiveView:
    def test_non_tty_emits_compact_lines(self):
        buf = io.StringIO()
        view = LiveView(stream=buf)
        view.update(SNAPSHOT, title="t")
        view.update(SNAPSHOT, title="t")
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("live: 5/8 done, 1 failed") for line in lines)

    def test_close_prints_full_panel(self):
        buf = io.StringIO()
        view = LiveView(stream=buf)
        view.update(SNAPSHOT)
        view.close(SNAPSHOT, title="final")
        out = buf.getvalue()
        assert "final" in out
        assert "workers — 2 processes" in out


class TestWorkerTracerDrain:
    def test_disabled_returns_none(self):
        assert trace.active() is None
        assert telemetry.worker_tracer() is None

    def test_in_process_tracer_is_not_foreign(self):
        tracer = obs.enable(fresh=True)
        got = telemetry.worker_tracer()
        assert got is tracer  # same pid: the parent's own tracer comes back
        assert not got.foreign

    def test_drain_skips_non_foreign(self):
        tracer = obs.enable(fresh=True)
        mark = tracer.total_appended
        tracer.instant("local")
        events, new_mark = telemetry.drain_events(tracer, mark)
        assert events == [] and new_mark == mark  # already on the parent ring

    def test_drain_foreign_events_and_advances_mark(self):
        tracer = obs.enable(fresh=True)
        tracer.foreign = True  # what worker_tracer does after a fork
        mark = tracer.total_appended
        tracer.instant("w1")
        tracer.instant("w2")
        events, new_mark = telemetry.drain_events(tracer, mark)
        assert [e["name"] for e in events] == ["w1", "w2"]
        assert new_mark == tracer.total_appended
        assert telemetry.drain_events(tracer, new_mark)[0] == []


def _churned_pool(tracer, *, n_batches=4, batch=10):
    """Run a traced 2-worker pool through a few churn batches."""
    pts = uniform_points(80, rng=7)
    d0 = max_range_for_connectivity(pts, slack=1.5)
    inc = IncrementalTheta(pts, THETA, d0)
    di = DynamicInterference(inc, 0.5)
    tr = random_event_trace(
        pts, n_batches * batch, move_sigma=d0 / 2.0, rng=np.random.default_rng(7)
    )
    events = list(tr.events())
    cap = max([inc.size] + [int(ev.node) + 1 for ev in events]) + 8
    pool = TileWorkerPool(inc, di, workers=2, capacity=cap)
    try:
        for lo in range(0, len(events), batch):
            pool.apply_batch(events[lo : lo + batch])
    finally:
        pool.close()


class TestCrossProcessTraceMerge:
    """Satellite: spans from >= 2 pool workers merge into the parent export."""

    def test_pool_spans_merge_with_correct_pids(self):
        tracer = obs.enable(fresh=True)
        _churned_pool(tracer)
        events = tracer.events()
        pids = {e["pid"] for e in events}
        assert os.getpid() in pids
        worker_pids = pids - {os.getpid()}
        assert len(worker_pids) >= 2, f"expected spans from 2 workers, pids={pids}"
        names = {e["name"] for e in events}
        assert "pool.apply_batch" in names  # parent side
        assert "pool.batch" in names  # worker side
        # Worker spans carry worker pids, parent spans the parent pid.
        assert all(e["pid"] in worker_pids for e in events if e["name"] == "pool.batch")
        assert all(
            e["pid"] == os.getpid() for e in events if e["name"] == "pool.apply_batch"
        )

    def test_chrome_tracks_are_monotonic_per_pid(self):
        tracer = obs.enable(fresh=True)
        _churned_pool(tracer)
        chrome = trace.chrome_trace_events(tracer.events())
        assert len({e["pid"] for e in chrome}) >= 3
        last_ts: dict = {}
        for ev in chrome:
            pid = ev["pid"]
            assert ev["ts"] >= last_ts.get(pid, -math.inf), f"pid {pid} track not sorted"
            last_ts[pid] = ev["ts"]

    def test_batch_span_carries_diff_accounting(self):
        tracer = obs.enable(fresh=True)
        metrics.enable(fresh=True)
        _churned_pool(tracer)
        batches = [e for e in tracer.events() if e["name"] == "pool.apply_batch"]
        assert batches
        for ev in batches:
            assert ev["args"]["workers"] == 2
            assert ev["args"]["halo_entries"] >= 0
            assert ev["args"]["diff_bytes"] >= 0
        snap = metrics.active().snapshot()
        assert snap["counters"]["pool.batches"] == len(batches)
        assert snap["gauges"]["pool.worker_rss_bytes"]["value"] > 0

    def test_untraced_pool_ships_no_events(self):
        assert trace.active() is None
        pts = uniform_points(60, rng=9)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        di = DynamicInterference(inc, 0.5)
        pool = TileWorkerPool(inc, di, workers=2, capacity=inc.size + 8)
        try:
            # Telemetry still rides the replies (resource samples) but no
            # span events leak across when tracing is off.
            for tele in pool._last_tele.values():
                assert "events" not in tele
                assert tele["rss_bytes"] > 0
        finally:
            pool.close()
