"""Disjoint-region parallel event application: serial equivalence.

Property: for any partition of a step's events into groups —
and any thread count — phase-A-then-grouped-repair produces exactly the
edge set and conflict CSR that serial per-event application produces.
Asserted over 20 seeded random traces, a high-churn burst, and the
grouping-layer unit contracts (same-node events share a group, distant
events do not, group order follows trace order).
"""

import math

import numpy as np
import pytest

from repro import (
    DynamicInterference,
    IncrementalTheta,
    NodeJoin,
    NodeLeave,
    NodeMove,
    apply_events_parallel,
    group_events,
    max_range_for_connectivity,
    random_event_trace,
    uniform_points,
)
from repro.dynamic.batching import independence_radius

THETA = math.pi / 9
DELTA = 0.5
SEEDS = list(range(20))


def _build(n, seed, *, slack=1.5):
    pts = uniform_points(n, rng=seed)
    d0 = max_range_for_connectivity(pts, slack=slack)
    return pts, d0, IncrementalTheta(pts, THETA, d0)


def _serial_apply(pts, d0, events, *, with_interference):
    inc = IncrementalTheta(pts, THETA, d0)
    di = DynamicInterference(inc, DELTA) if with_interference else None
    for ev in events:
        stats = inc.apply(ev)
        if di is not None:
            di.update_event(stats)
    return inc, di


class TestGrouping:
    def test_same_node_events_share_group(self):
        pts, d0, inc = _build(80, 0)
        node = int(inc.alive_ids()[0])
        far = int(inc.alive_ids()[-1])
        events = [
            NodeMove(node=node, x=0.1, y=0.1),
            NodeLeave(node=far),
            NodeMove(node=node, x=0.9, y=0.9),
        ]
        groups = group_events(inc, events, radius=1e-9)
        by_event = {i: gi for gi, g in enumerate(groups) for i in g}
        assert by_event[0] == by_event[2]

    def test_distant_events_split_with_small_radius(self):
        pts = np.array([[0.0, 0.0], [0.0, 0.1], [50.0, 50.0], [50.0, 50.1]])
        inc = IncrementalTheta(pts, THETA, 1.0)
        events = [NodeMove(node=0, x=0.05, y=0.0), NodeMove(node=2, x=50.05, y=50.0)]
        groups = group_events(inc, events, radius=2.0)
        assert len(groups) == 2
        assert groups[0] == [0] and groups[1] == [1]

    def test_nearby_events_merge(self):
        pts = np.array([[0.0, 0.0], [0.0, 0.1], [50.0, 50.0], [50.0, 50.1]])
        inc = IncrementalTheta(pts, THETA, 1.0)
        events = [NodeMove(node=0, x=0.05, y=0.0), NodeMove(node=1, x=0.0, y=0.15)]
        groups = group_events(inc, events, radius=2.0)
        assert groups == [[0, 1]]

    def test_groups_ordered_by_first_event_index(self):
        pts = np.array([[0.0, 0.0], [50.0, 50.0], [100.0, 0.0]])
        inc = IncrementalTheta(pts, THETA, 1.0)
        events = [
            NodeMove(node=2, x=100.0, y=0.1),
            NodeMove(node=0, x=0.0, y=0.1),
            NodeMove(node=1, x=50.0, y=50.1),
        ]
        groups = group_events(inc, events, radius=2.0)
        assert [g[0] for g in groups] == [0, 1, 2]

    def test_join_chain_within_batch_groups_cleanly(self):
        # Later events may reference nodes earlier events just created.
        pts, d0, inc = _build(40, 1)
        nid = inc.size
        events = [
            NodeJoin(node=nid, x=0.5, y=0.5),
            NodeMove(node=nid, x=0.52, y=0.5),
            NodeLeave(node=nid),
        ]
        groups = group_events(inc, events)
        by_event = {i: gi for gi, g in enumerate(groups) for i in g}
        assert by_event[0] == by_event[1] == by_event[2]

    def test_independence_radius_scale(self):
        assert independence_radius(1.0, 0.0) == pytest.approx(8.0)
        assert independence_radius(2.0, 0.5) == pytest.approx(18.0)


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_edges_and_conflict_rows(self, seed):
        pts, d0, _ = _build(100, seed)
        trace = random_event_trace(
            pts, 60, move_sigma=d0 / 2.0, rng=np.random.default_rng(500 + seed)
        )
        events = list(trace.events())
        inc_s, di_s = _serial_apply(pts, d0, events, with_interference=True)
        inc_p = IncrementalTheta(pts, THETA, d0)
        di_p = DynamicInterference(inc_p, DELTA)
        for lo in range(0, len(events), 12):
            apply_events_parallel(
                inc_p, events[lo : lo + 12], interference=di_p, jobs=2
            )
        assert np.array_equal(inc_s.edge_array(), inc_p.edge_array())
        assert di_s.interference_sets() == di_p.interference_sets()
        assert di_p.check_full_equivalence() == 0

    def test_high_churn_burst_one_batch(self):
        pts, d0, _ = _build(150, 7)
        trace = random_event_trace(
            pts, 100, move_sigma=d0 / 2.0, rng=np.random.default_rng(77)
        )
        events = list(trace.events())
        inc_s, _ = _serial_apply(pts, d0, events, with_interference=False)
        inc_p = IncrementalTheta(pts, THETA, d0)
        stats = apply_events_parallel(inc_p, events, jobs=4)
        assert stats.events == 100
        assert sum(stats.group_sizes) == 100
        assert np.array_equal(inc_s.edge_array(), inc_p.edge_array())

    def test_apply_batch_merged_region_equivalence(self):
        # The non-threaded batch API reaches the same fixed point too.
        pts, d0, _ = _build(90, 9)
        trace = random_event_trace(
            pts, 50, move_sigma=d0 / 2.0, rng=np.random.default_rng(99)
        )
        events = list(trace.events())
        inc_s, _ = _serial_apply(pts, d0, events, with_interference=False)
        inc_b = IncrementalTheta(pts, THETA, d0)
        for lo in range(0, len(events), 10):
            inc_b.apply_batch(events[lo : lo + 10])
        assert np.array_equal(inc_s.edge_array(), inc_b.edge_array())
        assert not inc_b.check_full_equivalence()


class TestBackendSelection:
    def _trace(self, n_events, seed=6):
        pts, d0, _ = _build(120, seed)
        trace = random_event_trace(
            pts, n_events, move_sigma=d0 / 2.0, rng=np.random.default_rng(seed)
        )
        return pts, d0, list(trace.events())

    def test_explicit_serial_backend(self):
        pts, d0, events = self._trace(30)
        inc = IncrementalTheta(pts, THETA, d0)
        stats = apply_events_parallel(inc, events, backend="serial", jobs=8)
        assert stats.backend == "serial" and stats.jobs == 1

    def test_explicit_thread_backend(self):
        # Two far-apart pairs: guaranteed independent groups, so the
        # thread pool actually spins up and the stats reflect it.
        pts = np.array([[0.0, 0.0], [0.0, 0.1], [50.0, 50.0], [50.0, 50.1]])
        events = [NodeMove(node=0, x=0.05, y=0.0), NodeMove(node=2, x=50.05, y=50.0)]
        inc_s, _ = _serial_apply(pts, 1.0, events, with_interference=False)
        inc = IncrementalTheta(pts, THETA, 1.0)
        stats = apply_events_parallel(inc, events, backend="thread", jobs=3)
        assert stats.backend == "thread" and stats.jobs == 3
        assert stats.groups == 2
        assert np.array_equal(inc_s.edge_array(), inc.edge_array())

    def test_auto_stays_serial_below_group_threshold(self):
        from repro.dynamic.batching import AUTO_THREAD_MIN_GROUPS

        pts, d0, _ = _build(100, 2)
        inc = IncrementalTheta(pts, THETA, d0)
        node = int(inc.alive_ids()[0])
        x, y = (float(v) for v in pts[node])
        # one tiny group, jobs unset: auto must not spin up threads
        stats = apply_events_parallel(inc, [NodeMove(node=node, x=x + 1e-4, y=y)])
        assert stats.groups < AUTO_THREAD_MIN_GROUPS
        assert stats.backend == "serial" and stats.jobs == 1

    def test_auto_picks_threads_on_many_groups_and_cores(self, monkeypatch):
        monkeypatch.setattr("os.sched_getaffinity", lambda _: set(range(4)))
        # nine pairs 50 apart: nine independent groups, past the auto
        # threshold, so jobs=None fans out on the (mocked) 4 cores
        pts = np.array(
            [[50.0 * i, float(j) * 0.1] for i in range(9) for j in range(2)]
        )
        events = [NodeMove(node=2 * i, x=50.0 * i + 0.05, y=0.0) for i in range(9)]
        inc_s, _ = _serial_apply(pts, 1.0, events, with_interference=False)
        inc = IncrementalTheta(pts, THETA, 1.0)
        stats = apply_events_parallel(inc, events)
        assert stats.groups == 9
        assert stats.backend == "thread" and stats.jobs == 4
        assert np.array_equal(inc_s.edge_array(), inc.edge_array())

    def test_process_backend_requires_pool(self):
        pts, d0, events = self._trace(10)
        inc = IncrementalTheta(pts, THETA, d0)
        with pytest.raises(ValueError, match="pool"):
            apply_events_parallel(inc, events, backend="process")

    def test_unknown_backend_rejected(self):
        pts, d0, events = self._trace(10)
        inc = IncrementalTheta(pts, THETA, d0)
        with pytest.raises(ValueError, match="backend"):
            apply_events_parallel(inc, events, backend="gpu")


class TestBatchStats:
    def test_stats_shape_and_changelog(self):
        pts, d0, _ = _build(80, 3)
        trace = random_event_trace(
            pts, 20, move_sigma=d0 / 2.0, rng=np.random.default_rng(33)
        )
        inc = IncrementalTheta(pts, THETA, d0)
        di = DynamicInterference(inc, DELTA)
        stats = apply_events_parallel(inc, list(trace.events()), interference=di)
        assert stats.groups == len(stats.group_sizes) >= 1
        assert stats.wall_time > 0
        assert stats.conflict_rows_touched == sum(
            cs.rows_recomputed for cs in stats.conflict_repairs
        )
        assert di.check_full_equivalence() == 0

    def test_empty_and_dead_move_batches(self):
        from repro import FailStop

        pts, d0, _ = _build(40, 4)
        inc = IncrementalTheta(pts, THETA, d0)
        di = DynamicInterference(inc, DELTA)
        stats = apply_events_parallel(inc, [], interference=di)
        assert stats.events == 0 and stats.groups == 0
        node = int(inc.alive_ids()[0])
        apply_events_parallel(inc, [FailStop(node=node)], interference=di)
        # A dead node's move repairs nothing but must keep the version sync.
        stats = apply_events_parallel(
            inc, [NodeMove(node=node, x=0.2, y=0.2)], interference=di
        )
        assert stats.nodes_touched == 0
        assert di.check_full_equivalence() == 0
