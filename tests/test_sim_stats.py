"""Direct tests for the RoutingStats accounting."""

from __future__ import annotations

import pytest

from repro.sim.stats import RoutingStats


class TestInjectionAccounting:
    def test_accept_all(self):
        st = RoutingStats()
        st.record_injection(5, 5)
        assert st.injected == 5 and st.accepted == 5 and st.dropped == 0

    def test_partial_accept(self):
        st = RoutingStats()
        st.record_injection(5, 2)
        assert st.dropped == 3

    def test_overaccept_rejected(self):
        st = RoutingStats()
        with pytest.raises(ValueError):
            st.record_injection(2, 3)


class TestAttemptAccounting:
    def test_success_energy_split(self):
        st = RoutingStats()
        st.record_attempt(1.5, True)
        st.record_attempt(2.5, False)
        assert st.attempts == 2
        assert st.successes == 1
        assert st.interference_failures == 1
        assert st.energy_attempted == pytest.approx(4.0)
        assert st.energy_successful == pytest.approx(1.5)


class TestDerivedQuantities:
    def test_throughput(self):
        st = RoutingStats()
        st.record_delivery(6)
        st.end_step(0, 6)
        st.end_step(0, 0)
        assert st.throughput == pytest.approx(3.0)

    def test_throughput_no_steps(self):
        assert RoutingStats().throughput == 0.0

    def test_delivery_fraction_empty_is_one(self):
        assert RoutingStats().delivery_fraction == 1.0

    def test_average_cost_no_deliveries_with_spend(self):
        st = RoutingStats()
        st.record_attempt(1.0, True)
        assert st.average_cost == float("inf")

    def test_average_cost_nothing(self):
        assert RoutingStats().average_cost == 0.0

    def test_average_cost_counts_failed_attempts(self):
        """Energy of interference-killed attempts is charged (§3.3)."""
        st = RoutingStats()
        st.record_attempt(1.0, False)
        st.record_attempt(1.0, True)
        st.record_delivery(1)
        assert st.average_cost == pytest.approx(2.0)

    def test_max_height_tracks_peak(self):
        st = RoutingStats()
        st.end_step(3, 0)
        st.end_step(7, 0)
        st.end_step(2, 0)
        assert st.max_buffer_height == 7

    def test_delivered_trace(self):
        st = RoutingStats()
        st.end_step(0, 2)
        st.end_step(0, 5)
        assert st.delivered_trace == [2, 5]

    def test_as_dict_complete(self):
        st = RoutingStats()
        d = st.as_dict()
        for key in (
            "injected",
            "delivered",
            "throughput",
            "average_cost",
            "max_buffer_height",
            "interference_failures",
        ):
            assert key in d
