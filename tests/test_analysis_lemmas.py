"""Property tests of the geometry lemmas behind Theorem 2.2.

Each lemma is hammered with random configurations satisfying its
preconditions; hypothesis shrinks any counterexample.  These are the
reproduction's analogue of checking the paper's proofs.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.lemmas import (
    lemma23_constant,
    lemma23_holds,
    lemma24_holds,
    lemma25_holds,
    lemma26_holds,
)

unit = st.floats(0.05, 10.0, allow_nan=False)
angle_small = st.floats(0.001, math.pi / 3 - 0.01)


class TestLemma23:
    def test_constant_formula(self):
        assert lemma23_constant(0.0) == pytest.approx(1.0)
        assert lemma23_constant(math.pi / 3 - 0.1) > 1.0

    def test_constant_diverges_at_pi_over_3(self):
        with pytest.raises(ValueError):
            lemma23_constant(math.pi / 3 + 1e-9)
        # Just below the limit the constant blows up.
        assert lemma23_constant(math.pi / 3 - 1e-6) > 1e5

    @given(unit, unit, st.floats(0.001, math.pi / 3 - 0.02))
    @settings(max_examples=200, deadline=None)
    def test_lemma_holds_random_triangles(self, ac, scale, gamma):
        """Place C at origin, A at distance ac, B at distance ≥ ac with
        ∠ACB = gamma; the inequality must hold."""
        bc = ac * (1.0 + scale)
        c_pt = np.zeros(2)
        a = np.array([ac, 0.0])
        b = bc * np.array([math.cos(gamma), math.sin(gamma)])
        assert lemma23_holds(a, b, c_pt)

    def test_precondition_violation_detected(self):
        # |AC| > |BC|
        with pytest.raises(ValueError):
            lemma23_holds([5.0, 0.0], [1.0, 0.1], [0.0, 0.0])

    def test_explicit_constant_too_small_fails(self):
        """With c below the lemma's constant the inequality can break."""
        gamma = math.pi / 3 - 0.05
        a = np.array([1.0, 0.0])
        b = 1.0001 * np.array([math.cos(gamma), math.sin(gamma)])
        assert not lemma23_holds(a, b, np.zeros(2), c_const=0.1)


class TestLemma24:
    @given(st.floats(0.001, math.pi / 6 - 0.005), unit, st.floats(0.0, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_holds_random(self, alpha, ab, t):
        """A at origin, B at distance ab, C chosen with ∠BAC = alpha and
        |BC| ≤ |AC| ≤ |AB| (C in the right range along the alpha-ray)."""
        a = np.zeros(2)
        b = np.array([ab, 0.0])
        # Along the ray at angle alpha, |AC| ≤ |AB| and |BC| ≤ |AC| needs
        # C far enough: at ac = ab, |BC| = 2·ab·sin(alpha/2) ≤ ac ✓.
        ac = ab * (0.9 + 0.1 * t)
        c = ac * np.array([math.cos(alpha), math.sin(alpha)])
        bc = float(np.hypot(*(b - c)))
        assume(bc <= ac <= ab)
        assert lemma24_holds(a, b, c)

    def test_precondition_angle(self):
        a = np.zeros(2)
        b = np.array([1.0, 0.0])
        c = 0.95 * np.array([math.cos(1.0), math.sin(1.0)])  # angle 1 rad > π/6
        with pytest.raises(ValueError):
            lemma24_holds(a, b, c)


class TestLemma25:
    @given(
        st.floats(0.05, math.pi / 3 - 0.01),
        st.integers(2, 10),
        st.integers(0, 100),
    )
    @settings(max_examples=200, deadline=None)
    def test_holds_random_chains(self, theta, k, seed):
        """Random decreasing-radius chains with gaps ≤ θ."""
        gen = np.random.default_rng(seed)
        apex = np.zeros(2)
        r = 1.0
        ang = 0.0
        chain = []
        for _ in range(k):
            chain.append(r * np.array([math.cos(ang), math.sin(ang)]))
            r *= gen.uniform(0.6, 1.0)
            ang += gen.uniform(0.0, theta)
        assert lemma25_holds(apex, chain, theta)

    def test_trivial_chain(self):
        assert lemma25_holds([0, 0], [[1, 0]], 0.5)

    def test_precondition_increasing_radius(self):
        with pytest.raises(ValueError):
            lemma25_holds([0, 0], [[1, 0], [2, 0.1]], 0.5)

    def test_precondition_gap_too_wide(self):
        p1 = [1.0, 0.0]
        p2 = [0.0, 1.0]  # 90° gap
        with pytest.raises(ValueError):
            lemma25_holds([0, 0], [p1, p2], 0.3)


class TestLemma26:
    @given(
        st.floats(0.002, math.pi / 12 - 0.003),
        st.floats(0.05, 0.95),
        st.floats(1.0, 10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_holds_when_configuration_valid(self, gamma, t, ab):
        """C on the ray at angle gamma from AB, outside the circle.

        C at distance frac·|AB| lies outside the circle with diameter
        AB exactly when frac > cos γ, so frac is interpolated in
        (cos γ, 1) rather than drawn blindly and filtered.
        """
        a = np.zeros(2)
        b = np.array([ab, 0.0])
        lo = math.cos(gamma)
        frac = lo + t * (1.0 - lo)
        ac = ab * frac
        c = ac * np.array([math.cos(gamma), math.sin(gamma)])
        o = b / 2.0
        assume(np.hypot(*(c - o)) > ab / 2.0 + 1e-12)
        try:
            ok = lemma26_holds(a, b, c)
        except ValueError:
            assume(False)
            return
        assert ok

    def test_precondition_angle(self):
        a = np.zeros(2)
        b = np.array([1.0, 0.0])
        c = 0.9 * np.array([math.cos(0.5), math.sin(0.5)])  # 0.5 rad > π/12
        with pytest.raises(ValueError):
            lemma26_holds(a, b, c)

    def test_precondition_inside_circle(self):
        a = np.zeros(2)
        b = np.array([1.0, 0.0])
        c = np.array([0.5, 0.05])  # near O, inside the circle
        with pytest.raises(ValueError):
            lemma26_holds(a, b, c)
