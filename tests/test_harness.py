"""Tests for the claim-verification harness (registry, cache, results, runner)."""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.harness import cache as cache_mod
from repro.harness.cache import SubstrateCache, points_digest
from repro.harness.registry import REGISTRY, build_rows, resolve_ids
from repro.harness.results import SCHEMA, ClaimResult, default_results_dir, jsonify, write_result
from repro.harness.runner import run_claims, verify_claim


class TestRegistry:
    def test_covers_e1_through_e24(self):
        assert list(REGISTRY) == [f"e{i}" for i in range(1, 25)]

    def test_claims_are_well_formed(self):
        for claim in REGISTRY.values():
            assert claim.paper_ref, claim.id
            assert callable(claim.check), claim.id
            assert callable(claim.harness()), claim.id  # module/function resolve
            assert claim.params("full") is claim.full_params
            assert claim.params("quick") is claim.quick_params

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            REGISTRY["e1"].params("medium")

    def test_resolve_ids(self):
        assert resolve_ids(None) == list(REGISTRY)
        assert resolve_ids("all") == list(REGISTRY)
        assert resolve_ids("e4, e7") == ["e4", "e7"]
        with pytest.raises(KeyError, match="e99"):
            resolve_ids("e1,e99")

    def test_build_rows_quick(self):
        rows = build_rows(REGISTRY["e1"], "quick")
        assert rows and all("max_degree" in r for r in rows)


class TestCache:
    def test_get_or_build_builds_once(self):
        c = SubstrateCache()
        calls = []
        for _ in range(3):
            v = c.get_or_build("k", lambda: calls.append(1) or "value")
        assert v == "value"
        assert len(calls) == 1
        assert c.stats.hits == 2 and c.stats.misses == 1

    def test_fifo_eviction(self):
        c = SubstrateCache(max_entries=2)
        for k in "abc":
            c.get_or_build(k, lambda k=k: k)
        assert len(c) == 2
        assert c.stats.evictions == 1
        c.get_or_build("a", lambda: "rebuilt")  # "a" was evicted
        assert c.stats.misses == 4

    def test_points_digest_is_content_keyed(self):
        a = np.array([[0.0, 1.0], [2.0, 3.0]])
        assert points_digest(a) == points_digest(a.copy())
        assert points_digest(a) != points_digest(a + 1e-9)
        assert points_digest(a) != points_digest(a.ravel())  # shape matters

    def test_cached_range_shares_work(self):
        cache_mod.clear_cache()
        pts = np.random.default_rng(0).random((32, 2))
        d1 = cache_mod.cached_range(pts, 1.5)
        d2 = cache_mod.cached_range(pts.copy(), 1.5)
        assert d1 == d2
        assert cache_mod.cache_stats() == {"hits": 1, "misses": 1, "evictions": 0}


class TestResults:
    def test_jsonify_handles_numpy_and_nonfinite(self):
        payload = {
            "i": np.int64(3),
            "f": np.float64(1.5),
            "b": np.bool_(True),
            "nan": float("nan"),
            "inf": float("inf"),
            "ninf": float("-inf"),
            "nested": [np.int32(1), {"x": math.inf}],
        }
        out = jsonify(payload)
        assert out == {
            "i": 3,
            "f": 1.5,
            "b": True,
            "nan": "nan",
            "inf": "inf",
            "ninf": "-inf",
            "nested": [1, {"x": "inf"}],
        }
        json.dumps(out, allow_nan=False)  # strict JSON round-trips

    def test_write_result_respects_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "redirected"))
        assert default_results_dir() == tmp_path / "redirected"
        res = ClaimResult(
            claim="e0", title="t", paper_ref="ref", profile="quick", seed=0,
            params={}, rows=[{"v": np.float64(2.0)}], failures=[], runtime_seconds=0.1,
        )
        path = write_result(res)
        assert path == tmp_path / "redirected" / "e0.json"
        rec = json.loads(path.read_text())
        assert rec["schema"] == SCHEMA
        assert rec["passed"] is True
        assert rec["n_rows"] == 1 and rec["rows"] == [{"v": 2.0}]

    def test_default_results_dir_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        assert str(default_results_dir()).endswith("results")


class TestRunner:
    def test_verify_claim_passes(self):
        res = verify_claim("e1", "quick")
        assert res.passed and res.rows and res.runtime_seconds >= 0
        assert res.paper_ref == "Lemma 2.1"

    def test_crashing_predicate_is_a_failure_not_a_crash(self, monkeypatch):
        def boom(rows, profile):
            raise RuntimeError("kaput")

        broken = dataclasses.replace(REGISTRY["e1"], check=boom)
        monkeypatch.setitem(REGISTRY, "e1", broken)
        res = verify_claim("e1", "quick")
        assert not res.passed
        assert "predicate raised RuntimeError" in res.failures[0]

    def test_unknown_claim_rejected(self):
        with pytest.raises(KeyError, match="e99"):
            run_claims(["e99"])

    def test_parallel_matches_serial(self):
        serial = run_claims(["e1", "e5"], profile="quick", jobs=1)
        parallel = run_claims(["e1", "e5"], profile="quick", jobs=2)
        assert [r.claim for r in parallel] == ["e1", "e5"]
        for s, p in zip(serial, parallel):
            assert s.rows == p.rows
            assert s.failures == p.failures
