"""Tests for the honeycomb hexagonal tiling."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.hexgrid import HexGrid
from repro.geometry.primitives import polygon_area

coords = st.floats(-50, 50, allow_nan=False)


class TestConstruction:
    def test_guard_zone_side(self):
        hg = HexGrid.for_guard_zone(0.5)
        assert hg.side == pytest.approx(4.0)

    def test_guard_zone_rejects_negative(self):
        with pytest.raises(ValueError):
            HexGrid.for_guard_zone(-0.1)

    def test_diameter(self):
        assert HexGrid(2.0).diameter == 4.0

    def test_bad_side(self):
        with pytest.raises(ValueError):
            HexGrid(0)


class TestCellAssignment:
    def test_origin_in_cell_zero(self):
        hg = HexGrid(1.0)
        assert hg.cell_of(np.array([0.0, 0.0])).tolist() == [0, 0]

    def test_center_roundtrip(self):
        """Cell centers map back to their own cell."""
        hg = HexGrid(1.7)
        for q in range(-3, 4):
            for r in range(-3, 4):
                c = hg.center_of(np.array([q, r]))
                assert hg.cell_of(c).tolist() == [q, r]

    @given(st.tuples(coords, coords), st.floats(0.5, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_assignment_is_nearest_center(self, p, side):
        """cell_of realizes the Voronoi partition of hex centers."""
        hg = HexGrid(side)
        p = np.asarray(p)
        cell = hg.cell_of(p)
        own = float(np.hypot(*(p - hg.center_of(cell))))
        for nb in hg.neighbors_of(cell):
            other = float(np.hypot(*(p - hg.center_of(nb))))
            assert own <= other + 1e-9

    @given(st.tuples(coords, coords), st.floats(0.5, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_point_within_hex_diameter_of_center(self, p, side):
        hg = HexGrid(side)
        p = np.asarray(p)
        c = hg.center_of(hg.cell_of(p))
        assert np.hypot(*(p - c)) <= side + 1e-9

    def test_batch_matches_single(self):
        hg = HexGrid(2.0)
        pts = np.random.default_rng(0).uniform(-10, 10, (50, 2))
        batch = hg.cell_of(pts)
        singles = np.array([hg.cell_of(p) for p in pts])
        assert np.array_equal(batch, singles)


class TestGeometry:
    def test_vertices_form_regular_hexagon(self):
        hg = HexGrid(3.0)
        v = hg.vertices_of(np.array([0, 0]))
        c = hg.center_of(np.array([0, 0]))
        r = np.hypot(v[:, 0] - c[0], v[:, 1] - c[1])
        assert np.allclose(r, 3.0)

    def test_hexagon_area(self):
        hg = HexGrid(2.0)
        v = hg.vertices_of(np.array([1, -1]))
        expected = 3.0 * math.sqrt(3) / 2.0 * 4.0
        assert polygon_area(v) == pytest.approx(expected)

    def test_neighbor_count_and_distance(self):
        hg = HexGrid(1.0)
        nbs = hg.neighbors_of((0, 0))
        assert len(nbs) == 6
        for nb in nbs:
            assert hg.cell_distance((0, 0), nb) == 1

    def test_neighbor_centers_equidistant(self):
        hg = HexGrid(1.5)
        c0 = hg.center_of(np.array([0, 0]))
        dists = [float(np.hypot(*(hg.center_of(nb) - c0))) for nb in hg.neighbors_of((0, 0))]
        assert np.allclose(dists, dists[0])
        assert dists[0] == pytest.approx(1.5 * math.sqrt(3))

    def test_cell_distance_symmetric(self):
        hg = HexGrid(1.0)
        assert hg.cell_distance((0, 0), (3, -2)) == hg.cell_distance((3, -2), (0, 0))


class TestGrouping:
    def test_group_by_cell_partitions_points(self):
        hg = HexGrid(2.0)
        pts = np.random.default_rng(1).uniform(-5, 5, (40, 2))
        groups = hg.group_by_cell(pts)
        all_idx = sorted(int(i) for arr in groups.values() for i in arr)
        assert all_idx == list(range(40))

    def test_group_consistent_with_cell_of(self):
        hg = HexGrid(2.0)
        pts = np.random.default_rng(2).uniform(-5, 5, (20, 2))
        groups = hg.group_by_cell(pts)
        for cell, idxs in groups.items():
            for i in idxs:
                assert tuple(hg.cell_of(pts[int(i)])) == cell
