"""Cross-component consistency checks (oracle style, hypothesis driven)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.routing_experiments import ring_graph
from repro.core.honeycomb import HoneycombConfig, HoneycombRouter
from repro.geometry.pointsets import uniform_points
from repro.sim.schedules import Schedule, witness_buffer_usage


def random_schedules(gen: np.random.Generator, n_nodes: int, k: int) -> list[Schedule]:
    """Random well-formed (per-packet valid) schedules on arbitrary edges."""
    out = []
    for _ in range(k):
        t0 = int(gen.integers(0, 5))
        length = int(gen.integers(1, 5))
        nodes = [int(gen.integers(0, n_nodes))]
        for _ in range(length):
            nxt = int(gen.integers(0, n_nodes))
            while nxt == nodes[-1]:
                nxt = int(gen.integers(0, n_nodes))
            nodes.append(nxt)
        t = t0
        hops = []
        for u, v in zip(nodes[:-1], nodes[1:]):
            t += int(gen.integers(1, 4))
            hops.append(((u, v), t))
        out.append(Schedule(inject_time=t0, hops=tuple(hops)))
    return out


def naive_buffer_usage(schedules: list[Schedule]) -> int:
    """Step-by-step simulation of witness buffer occupancy."""
    if not schedules:
        return 0
    horizon = max(s.finish_time for s in schedules) + 1
    peak = 0
    for t in range(horizon + 1):
        occ: dict[tuple[int, int], int] = {}
        for s in schedules:
            d = s.dest
            node = s.source
            arrive = s.inject_time
            for (u, v), ht in s.hops:
                # occupies (node, d) during [arrive, ht)
                if arrive <= t < ht:
                    occ[(node, d)] = occ.get((node, d), 0) + 1
                    break
                node, arrive = v, ht
        if occ:
            peak = max(peak, max(occ.values()))
    return peak


class TestBufferUsageOracle:
    @given(st.integers(0, 60), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_step_simulation(self, seed, k):
        gen = np.random.default_rng(seed)
        scheds = random_schedules(gen, 6, k)
        assert witness_buffer_usage(scheds) == naive_buffer_usage(scheds)


class TestGeographicConsistency:
    @given(st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_router_delivers_iff_offline_path_exists(self, seed):
        """The online greedy router delivers exactly the packets whose
        offline greedy trace reaches the destination (when all edges are
        usable every step)."""
        import math

        import repro
        from repro.sim.geographic import (
            GreedyGeographicRouter,
            greedy_geographic_path,
        )

        gen = np.random.default_rng(seed)
        pts = uniform_points(40, rng=gen)
        d = repro.max_range_for_connectivity(pts, slack=1.2)
        g = repro.theta_algorithm(pts, math.pi / 6, d).graph
        edges = g.directed_edge_array()
        costs = np.concatenate([g.edge_costs, g.edge_costs])
        pairs = [tuple(int(x) for x in gen.choice(40, 2, replace=False)) for _ in range(8)]
        router = GreedyGeographicRouter(g)
        expected = 0
        for s, t in pairs:
            _, ok = greedy_geographic_path(g, s, t)
            expected += int(ok)
            router.inject(s, t, 1)
        for _ in range(80):
            router.run_step(edges, costs)
        assert router.stats.delivered == expected


class TestHoneycombGeometry:
    @given(st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_contestants_in_distinct_hexagons(self, seed):
        gen = np.random.default_rng(seed)
        pts = uniform_points(120, side=15.0, rng=gen)
        r = HoneycombRouter(pts, None, HoneycombConfig(delta=0.5, threshold=1.0), rng=gen)
        if len(r.directed_pairs) == 0:
            return
        # Load a few buffers so contestants exist.
        for _ in range(10):
            k = int(gen.integers(0, len(r.directed_pairs)))
            s, t = (int(x) for x in r.directed_pairs[k])
            r.router.inject(s, t, 3)
        chosen = r.select_contestants()
        cells = [
            tuple(int(c) for c in r.hexgrid.cell_of(pts[r.directed_pairs[k][0]]))
            for k in chosen
        ]
        assert len(cells) == len(set(cells))

    @given(st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_same_hexagon_senders_never_both_selected(self, seed):
        gen = np.random.default_rng(seed)
        pts = uniform_points(120, side=15.0, rng=gen)
        r = HoneycombRouter(pts, None, HoneycombConfig(delta=0.5, threshold=1.0), rng=gen)
        groups = r.hexgrid.group_by_cell(pts)
        # Senders of selected pairs, grouped by hexagon, are unique.
        for _ in range(10):
            k = int(gen.integers(0, max(len(r.directed_pairs), 1)))
            if len(r.directed_pairs) == 0:
                return
            s, t = (int(x) for x in r.directed_pairs[k])
            r.router.inject(s, t, 2)
        chosen = r.select_contestants()
        seen_cells = set()
        for k in chosen:
            s = int(r.directed_pairs[k][0])
            cell = tuple(int(c) for c in r.hexgrid.cell_of(pts[s]))
            assert cell not in seen_cells
            seen_cells.add(cell)
        del groups


class TestEngineScenarioEquivalence:
    def test_engine_equals_manual_loop(self):
        """SimulationEngine.run produces the same result as the manual
        per-step loop over the same scenario and router settings."""
        from repro.core.balancing import BalancingConfig, BalancingRouter
        from repro.sim.adversary import stream_scenario
        from repro.sim.engine import SimulationEngine

        g = ring_graph(10)
        scen = stream_scenario(g, 2, 50, rng=3)

        r1 = BalancingRouter(g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 64))
        SimulationEngine.for_scenario(r1, scen).run(50, drain=50)

        r2 = BalancingRouter(g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 64))
        for t in range(100):
            edges, costs = scen.active_edges(t)
            inj = list(scen.injections(t)) if t < 50 else []
            r2.run_step(edges, costs, inj)

        assert r1.stats.delivered == r2.stats.delivered
        assert np.array_equal(r1.heights, r2.heights)
