"""Tests for ΘALG (Lemma 2.1, Theorem 2.2 behaviour)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.theta import theta_algorithm
from repro.geometry.pointsets import (
    DISTRIBUTIONS,
    star_points,
    two_cluster_bridge_points,
    uniform_points,
)
from repro.graphs.metrics import degrees, energy_stretch, is_connected, max_degree
from repro.graphs.transmission import max_range_for_connectivity, transmission_graph


def build(pts, theta=math.pi / 9, slack=1.5, kappa=2.0):
    d = max_range_for_connectivity(pts, slack=slack)
    return (
        transmission_graph(pts, d, kappa=kappa),
        theta_algorithm(pts, theta, d, kappa=kappa),
        d,
    )


class TestStructure:
    def test_subgraph_of_yao(self, small_world):
        _, _, _, topo = small_world
        for i, j in topo.graph.edges:
            assert topo.yao_graph.has_edge(int(i), int(j))

    def test_edges_within_range(self, small_world):
        _, d, _, topo = small_world
        assert (topo.graph.edge_lengths <= d + 1e-9).all()

    def test_two_nodes(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        topo = theta_algorithm(pts, math.pi / 6, 2.0)
        assert topo.graph.n_edges == 1

    def test_single_node(self):
        topo = theta_algorithm(np.zeros((1, 2)), math.pi / 6, 1.0)
        assert topo.graph.n_edges == 0

    def test_theta_bound_enforced(self):
        with pytest.raises(ValueError):
            theta_algorithm(np.zeros((2, 2)), math.pi / 2, 1.0)

    def test_admitted_edges_exist_in_graph(self, small_world):
        _, _, _, topo = small_world
        for (x, _s), w in topo.admitted.items():
            assert topo.graph.has_edge(w, x)

    def test_admitted_is_nearest_claimant(self, small_world):
        """Phase 2 admits the closest in-neighbor per receiver sector."""
        pts, _, _, topo = small_world
        # Collect all Yao in-edges per (receiver, receiver-sector).
        claim: dict[tuple[int, int], list[int]] = {}
        for (u, _s), v in topo.yao_nearest.items():
            sec = topo.sector(v, u)
            claim.setdefault((v, sec), []).append(u)
        for key, sources in claim.items():
            x, _sec = key
            w = topo.admitted[key]
            dw = float(np.hypot(*(pts[w] - pts[x])))
            for s in sources:
                assert dw <= float(np.hypot(*(pts[s] - pts[x]))) + 1e-12

    def test_sector_method_matches_geometry(self, small_world):
        pts, _, _, topo = small_world
        from repro.geometry.sectors import sector_of

        for u, v in topo.graph.edges[:20]:
            assert topo.sector(int(u), int(v)) == sector_of(
                topo.partition.width, pts[u], pts[v]
            )

    def test_in_neighbor_set(self, small_world):
        _, _, _, topo = small_world
        n_u = topo.in_neighbor_set(0)
        assert n_u == {v for (u, s), v in topo.yao_nearest.items() if u == 0}


class TestLemma21:
    """N is connected with degree ≤ 4π/θ."""

    @pytest.mark.parametrize("dist_name", sorted(DISTRIBUTIONS))
    def test_connected_all_distributions(self, dist_name):
        pts = DISTRIBUTIONS[dist_name](80, rng=3)
        gstar, topo, _ = build(pts)
        assert is_connected(gstar)
        assert is_connected(topo.graph)

    @pytest.mark.parametrize("theta", [math.pi / 3, math.pi / 6, math.pi / 12])
    def test_degree_bound(self, theta):
        pts = uniform_points(150, rng=4)
        _, topo, _ = build(pts, theta=theta)
        bound = 2 * topo.partition.n_sectors
        assert max_degree(topo.graph) <= bound

    def test_star_degree_constant(self):
        """The Ω(n)-degree Yao pathology is pruned to O(1)."""
        pts = star_points(120, rng=0)
        theta = math.pi / 6
        topo = theta_algorithm(pts, theta, 2.0)
        hub_yao = degrees(topo.yao_graph)[0]
        hub_n = degrees(topo.graph)[0]
        assert hub_yao >= 90  # pathology present in phase 1
        assert hub_n <= 2 * topo.partition.n_sectors
        assert is_connected(topo.graph)

    @given(st.integers(5, 60), st.integers(0, 10))
    @settings(max_examples=20, deadline=None)
    def test_property_connected_and_bounded(self, n, seed):
        pts = uniform_points(n, rng=seed)
        _, topo, _ = build(pts, theta=math.pi / 6)
        assert is_connected(topo.graph)
        assert max_degree(topo.graph) <= 2 * topo.partition.n_sectors


class TestTheorem22:
    """Energy-stretch is O(1)."""

    @pytest.mark.parametrize("dist_name", sorted(DISTRIBUTIONS))
    def test_energy_stretch_bounded(self, dist_name):
        pts = DISTRIBUTIONS[dist_name](80, rng=5)
        gstar, topo, _ = build(pts, theta=math.pi / 9)
        es = energy_stretch(topo.graph, gstar)
        assert es.disconnected_pairs == 0
        assert es.max_stretch < 3.0  # generous constant for θ = 20°

    @pytest.mark.parametrize("kappa", [2.0, 3.0, 4.0])
    def test_energy_stretch_all_kappa(self, kappa):
        pts = uniform_points(70, rng=6)
        gstar, topo, _ = build(pts, kappa=kappa)
        es = energy_stretch(topo.graph, gstar)
        assert es.max_stretch < 3.0

    def test_stretch_flat_in_n(self):
        """Stretch does not grow with n (the O(1) claim)."""
        worst = []
        for n in (40, 90, 160):
            pts = uniform_points(n, rng=8)
            gstar, topo, _ = build(pts)
            worst.append(energy_stretch(topo.graph, gstar).max_stretch)
        assert max(worst) < 3.0

    def test_long_bridge_edge(self):
        """Case-2 stress: the single long G* edge between clusters."""
        pts = two_cluster_bridge_points(60, gap=0.8, spread=0.04, rng=9)
        gstar, topo, _ = build(pts, slack=1.1)
        es = energy_stretch(topo.graph, gstar)
        assert es.disconnected_pairs == 0
        assert es.max_stretch < 4.0

    def test_offset_insensitivity(self):
        """Anchor ablation: random sector offsets keep stretch bounded."""
        pts = uniform_points(60, rng=10)
        d = max_range_for_connectivity(pts, slack=1.5)
        gstar = transmission_graph(pts, d)
        for offset in (0.0, 0.1, 0.7, 2.0):
            topo = theta_algorithm(pts, math.pi / 9, d, offset=offset)
            es = energy_stretch(topo.graph, gstar)
            assert es.max_stretch < 3.0
            assert is_connected(topo.graph)


class TestDeterminism:
    def test_repeat_runs_identical(self):
        pts = uniform_points(50, rng=11)
        a = theta_algorithm(pts, math.pi / 9, 0.5)
        b = theta_algorithm(pts, math.pi / 9, 0.5)
        assert np.array_equal(a.graph.edges, b.graph.edges)

    def test_lattice_ties_resolved(self):
        """Exact lattice: many equal distances, still deterministic/valid."""
        from repro.geometry.pointsets import grid_points

        pts = grid_points(25)
        gstar, topo, _ = build(pts, slack=1.01)
        assert is_connected(topo.graph)
        assert max_degree(topo.graph) <= 2 * topo.partition.n_sectors
