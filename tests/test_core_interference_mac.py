"""Tests for the §3.3 random-activation MAC ((T, γ, I)-balancing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.interference_mac import RandomActivationMAC, estimate_edge_interference
from repro.graphs.base import GeometricGraph
from repro.interference.conflict import interference_sets
from repro.sim.packets import Transmission


@pytest.fixture
def line5() -> GeometricGraph:
    pts = np.column_stack([np.arange(5, dtype=float), np.zeros(5)])
    return GeometricGraph(pts, [(i, i + 1) for i in range(4)])


class TestEstimateBounds:
    def test_at_least_own_set_size(self, line5):
        bounds = estimate_edge_interference(line5, 0.5)
        sets = interference_sets(line5, 0.5)
        for k, s in enumerate(sets):
            assert bounds[k] >= max(len(s), 1)

    def test_own_mode_is_set_size(self, line5):
        bounds = estimate_edge_interference(line5, 0.5, mode="own")
        sets = interference_sets(line5, 0.5)
        assert bounds.tolist() == [max(len(s), 1.0) for s in sets]

    def test_bad_mode_rejected(self, line5):
        with pytest.raises(ValueError):
            estimate_edge_interference(line5, 0.5, mode="both")

    def test_covers_neighbors(self, line5):
        """Neighborhood mode bounds the interference degree of every
        edge e touches."""
        bounds = estimate_edge_interference(line5, 0.5, mode="neighborhood")
        sets = interference_sets(line5, 0.5)
        sizes = np.array([len(s) for s in sets])
        for k, s in enumerate(sets):
            for e2 in s:
                assert bounds[k] >= sizes[int(e2)]

    def test_minimum_one(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [50.0, 50.0], [51.0, 50.0]])
        g = GeometricGraph(pts, [(0, 1), (2, 3)])
        bounds = estimate_edge_interference(g, 0.1)
        assert (bounds >= 1).all()


class TestActivation:
    def test_probabilities_at_most_half(self, line5):
        mac = RandomActivationMAC(line5, 0.5, rng=0)
        assert (mac.activation_probs <= 0.5 + 1e-12).all()

    def test_active_edges_both_directions(self, line5):
        mac = RandomActivationMAC(line5, 0.5, rng=1)
        for _ in range(50):
            directed, costs = mac.active_edges()
            assert len(directed) == len(costs)
            assert len(directed) % 2 == 0
            und = {(min(a, b), max(a, b)) for a, b in directed}
            assert 2 * len(und) == len(directed)

    def test_activation_frequency_matches_probability(self, line5):
        mac = RandomActivationMAC(line5, 0.5, rng=2)
        trials = 4000
        counts = np.zeros(line5.n_edges)
        for _ in range(trials):
            directed, _ = mac.active_edges()
            und = {(min(a, b), max(a, b)) for a, b in directed}
            for e in und:
                counts[line5.edge_id(*e)] += 1
        freq = counts / trials
        assert np.allclose(freq, mac.activation_probs, atol=0.03)

    def test_custom_bounds(self, line5):
        mac = RandomActivationMAC(
            line5, 0.5, rng=0, interference_bounds=np.full(4, 8.0)
        )
        assert np.allclose(mac.activation_probs, 1 / 16)

    def test_bad_bounds_rejected(self, line5):
        with pytest.raises(ValueError):
            RandomActivationMAC(line5, 0.5, interference_bounds=np.ones(3))
        with pytest.raises(ValueError):
            RandomActivationMAC(line5, 0.5, interference_bounds=np.full(4, 0.5))

    def test_empty_graph(self):
        g = GeometricGraph(np.zeros((2, 2)) + [[0, 0], [9, 9]], [])
        mac = RandomActivationMAC(g, 0.5, rng=0)
        directed, costs = mac.active_edges()
        assert len(directed) == 0


class TestSuccessMask:
    def test_same_edge_both_directions_compatible(self, line5):
        mac = RandomActivationMAC(line5, 0.5, rng=0)
        txs = [
            Transmission(0, 1, 4, 1.0),
            Transmission(1, 0, 4, 1.0),
        ]
        mask = mac.success_mask(txs)
        assert mask.all()

    def test_adjacent_edges_fail(self, line5):
        mac = RandomActivationMAC(line5, 0.5, rng=0)
        txs = [
            Transmission(0, 1, 4, 1.0),
            Transmission(1, 2, 4, 1.0),
        ]
        mask = mac.success_mask(txs)
        assert not mask.any()

    def test_distant_edges_succeed(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [20.0, 0.0], [21.0, 0.0]])
        g = GeometricGraph(pts, [(0, 1), (2, 3)])
        mac = RandomActivationMAC(g, 0.5, rng=0)
        txs = [Transmission(0, 1, 3, 1.0), Transmission(2, 3, 0, 1.0)]
        assert mac.success_mask(txs).all()

    def test_empty(self, line5):
        mac = RandomActivationMAC(line5, 0.5, rng=0)
        assert len(mac.success_mask([])) == 0


class TestLemma32:
    def test_active_edge_interference_probability(self):
        """Empirical check of Lemma 3.2: conditioned on e being active,
        Pr[some active edge interferes with e] ≤ 1/2."""
        import math
        from repro.core.theta import theta_algorithm
        from repro.geometry.pointsets import uniform_points
        from repro.graphs.transmission import max_range_for_connectivity
        from repro.interference.conflict import interference_sets

        pts = uniform_points(50, rng=3)
        d = max_range_for_connectivity(pts, slack=1.4)
        topo = theta_algorithm(pts, math.pi / 6, d)
        g = topo.graph
        mac = RandomActivationMAC(g, 0.5, rng=4)
        sets = interference_sets(g, 0.5)
        trials = 1500
        hit = np.zeros(g.n_edges)
        active_count = np.zeros(g.n_edges)
        for _ in range(trials):
            directed, _ = mac.active_edges()
            active = {g.edge_id(min(a, b), max(a, b)) for a, b in directed}
            for e in active:
                active_count[e] += 1
                if any(int(x) in active for x in sets[e]):
                    hit[e] += 1
        # Activation probabilities are ≈ 1/(2I), so per-edge counts are
        # small; aggregate over all (edge, step) activations.  Lemma 3.2
        # bounds the probability by 1/2; allow sampling noise.
        assert active_count.sum() > 200
        assert hit.sum() / active_count.sum() <= 0.55
