"""Tests for the (w, ρ)-bounded AQT adversary and stability behaviour."""

from __future__ import annotations

import pytest

from repro.analysis.routing_experiments import grid_graph, ring_graph
from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.sim.aqt import (
    bounded_adversary_scenario,
    edge_load_profile,
    max_window_load,
)
from repro.sim.engine import SimulationEngine
from repro.sim.schedules import schedules_conflict_free, validate_schedule


@pytest.fixture(scope="module")
def aqt_scenario():
    return bounded_adversary_scenario(
        ring_graph(12), rho=0.5, window=8, duration=120, rng=0
    )


class TestGeneration:
    def test_load_respects_rho(self, aqt_scenario):
        """The generated injection sequence is genuinely (w, ρ)-bounded."""
        assert max_window_load(aqt_scenario, 8) <= 0.5 + 1e-12

    def test_witness_valid(self, aqt_scenario):
        for s in aqt_scenario.witness_schedules:
            validate_schedule(s)
        assert schedules_conflict_free(aqt_scenario.witness_schedules)

    def test_nonempty(self, aqt_scenario):
        assert aqt_scenario.witness_delivered > 0

    def test_parameter_validation(self):
        g = ring_graph(8)
        with pytest.raises(ValueError):
            bounded_adversary_scenario(g, rho=0.0, window=4, duration=10)
        with pytest.raises(ValueError):
            bounded_adversary_scenario(g, rho=1.5, window=4, duration=10)
        with pytest.raises(ValueError):
            bounded_adversary_scenario(g, rho=0.5, window=0, duration=10)

    def test_load_profile_covers_witness(self, aqt_scenario):
        prof = edge_load_profile(aqt_scenario)
        total = sum(len(v) for v in prof.values())
        hops = sum(s.n_hops for s in aqt_scenario.witness_schedules)
        assert total == hops

    def test_window_load_rejects_bad_window(self, aqt_scenario):
        with pytest.raises(ValueError):
            max_window_load(aqt_scenario, 0)


class TestStability:
    """The classical AQT question: bounded queues under ρ < 1."""

    @pytest.mark.parametrize("rho", [0.25, 0.5])
    def test_buffers_bounded_under_subcritical_load(self, rho):
        scenario = bounded_adversary_scenario(
            grid_graph(4), rho=rho, window=8, duration=300, rng=1
        )
        router = BalancingRouter(
            scenario.graph.n_nodes,
            scenario.destinations,
            BalancingConfig(threshold=1.0, gamma=0.0, max_height=10_000),
        )
        engine = SimulationEngine.for_scenario(router, scenario)
        engine.run(scenario.duration, drain=0)
        # Stability: max height stays far below the horizon (no linear
        # queue growth) and nothing was dropped despite huge H.
        assert router.stats.max_buffer_height < scenario.duration // 3
        assert router.stats.dropped == 0

    def test_heavier_load_means_taller_buffers(self):
        heights = {}
        for rho in (0.25, 0.75):
            scenario = bounded_adversary_scenario(
                grid_graph(4), rho=rho, window=8, duration=200, rng=2
            )
            router = BalancingRouter(
                scenario.graph.n_nodes,
                scenario.destinations,
                BalancingConfig(threshold=1.0, gamma=0.0, max_height=10_000),
            )
            SimulationEngine.for_scenario(router, scenario).run(scenario.duration)
            heights[rho] = router.stats.max_buffer_height
        assert heights[0.75] >= heights[0.25]
