"""Tests for the campaign subsystem: spec, store, runner, query, CLI.

The resume-semantics tests use a counting fake claim (registered into
the live REGISTRY via monkeypatch, harness importable from this module
so the registry's module/func indirection still works) to prove that
cells marked complete on the manifest are never re-executed.
"""

from __future__ import annotations

import json
import math
from dataclasses import replace

import pytest

from repro.__main__ import main
from repro.analysis.campaigns import campaign_claim_summary, group_reduce
from repro.campaign.query import (
    QueryError,
    flatten_cells,
    format_rows,
    parse_where,
    run_query,
    select_columns,
)
from repro.campaign.runner import run_campaign, run_cell
from repro.campaign.spec import SpecError, load_spec
from repro.campaign.store import CELL_SCHEMA, CampaignStore, StoreError, unjsonify
from repro.harness.registry import REGISTRY
from repro.harness.results import ResultsDirError, resolve_results_dir

SPEC_DOC = {
    "schema": "repro-campaign-spec/v1",
    "name": "unit",
    "profile": "quick",
    "grid": {"claim": ["e1"], "n": [24, 32], "seed": [0, 1]},
    "fixed": {"distributions": ["uniform"]},
}

#: executions recorded by fake_harness, reset per test via the fixture.
FAKE_CALLS: "list[int]" = []


def fake_harness(*, width=3, rng=None) -> "list[dict]":
    """Counting stand-in harness; returns rows with non-finite floats."""
    FAKE_CALLS.append(int(rng))
    return [
        {"seed": int(rng), "width": width, "bound": math.inf, "gap": math.nan},
    ]


def fake_check(rows, profile):
    return []


@pytest.fixture
def fake_claim(monkeypatch):
    """Register claim 'e1' as the counting fake for the duration of a test."""
    FAKE_CALLS.clear()
    fake = replace(
        REGISTRY["e1"],
        module=__name__,
        func="fake_harness",
        check=fake_check,
        quick_params={"width": 3},
    )
    monkeypatch.setitem(REGISTRY, "e1", fake)
    return fake


def write_spec(tmp_path, doc=SPEC_DOC):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(doc))
    return path


FAKE_SPEC_DOC = {
    "schema": "repro-campaign-spec/v1",
    "name": "fake",
    "profile": "quick",
    "grid": {"claim": ["e1"], "seed": [0, 1, 2, 3]},
}


class TestSpec:
    def test_load_and_expand(self, tmp_path):
        spec = load_spec(write_spec(tmp_path))
        assert spec.name == "unit"
        assert spec.n_cells() == 4
        cells = spec.cells()
        assert len(cells) == 4
        assert {c.claim for c in cells} == {"e1"}
        assert {c.seed for c in cells} == {0, 1}
        # scalar-n convenience: e1 sweeps ns, so n=24 becomes ns=(24,)
        assert all(c.params["ns"] in ((24,), (32,)) for c in cells)

    def test_cell_ids_stable_under_axis_reorder(self, tmp_path):
        doc = dict(SPEC_DOC, grid={"seed": [0, 1], "n": [24, 32], "claim": ["e1"]})
        a = {c.cell_id for c in load_spec(write_spec(tmp_path)).cells()}
        b = {c.cell_id for c in load_spec(write_spec(tmp_path, doc)).cells()}
        assert a == b

    def test_toml_spec(self, tmp_path):
        pytest.importorskip("tomllib")  # Python >= 3.11
        path = tmp_path / "spec.toml"
        path.write_text(
            'schema = "repro-campaign-spec/v1"\n'
            'name = "t"\nprofile = "quick"\n'
            "[grid]\nclaim = [\"e1\"]\nn = [24]\n"
        )
        spec = load_spec(path)
        assert spec.n_cells() == 1

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"grid": {"claim": ["e99"]}}, "unknown claim"),
            ({"grid": {"n": [24]}}, "place 'claim'"),
            ({"grid": {"claim": ["e1"], "bogus_param": [1]}}, "does not accept"),
            ({"schema": "nope/v0"}, "unsupported spec schema"),
            ({"grid": {}}, "non-empty 'grid'"),
            ({"profile": "warp"}, "profile"),
        ],
    )
    def test_malformed_specs_die_before_running(self, tmp_path, mutation, fragment):
        doc = {**SPEC_DOC, **mutation}
        with pytest.raises(SpecError, match=fragment):
            load_spec(write_spec(tmp_path, doc))

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="no such campaign spec"):
            load_spec(tmp_path / "absent.json")


class TestStore:
    def test_inf_nan_round_trip(self, tmp_path, fake_claim):
        """Cells with inf/nan survive the store as strict JSON strings."""
        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        store = CampaignStore.create(tmp_path / "store", spec)
        cell = spec.cells()[0]
        store.write_cell(run_cell(cell))
        raw = json.loads((tmp_path / "store" / "cells" / f"{cell.cell_id}.json").read_text())
        assert raw["schema"] == CELL_SCHEMA
        assert raw["rows"][0]["bound"] == "inf"  # strict JSON on disk
        assert raw["rows"][0]["gap"] == "nan"
        rec = store.load_cell(cell.cell_id)
        assert rec["rows"][0]["bound"] == math.inf  # real floats on read
        assert math.isnan(rec["rows"][0]["gap"])

    def test_unjsonify_nested(self):
        doc = {"a": ["inf", "-inf", "nan", "keep"], "b": {"c": "inf"}}
        out = unjsonify(doc)
        assert out["a"][0] == math.inf and out["a"][1] == -math.inf
        assert math.isnan(out["a"][2]) and out["a"][3] == "keep"
        assert out["b"]["c"] == math.inf

    def test_create_twice_errors(self, tmp_path):
        spec = load_spec(write_spec(tmp_path))
        CampaignStore.create(tmp_path / "s", spec)
        with pytest.raises(StoreError, match="--resume"):
            CampaignStore.create(tmp_path / "s", spec)

    def test_open_rejects_different_spec(self, tmp_path):
        spec = load_spec(write_spec(tmp_path))
        CampaignStore.create(tmp_path / "s", spec)
        other = load_spec(write_spec(tmp_path, dict(SPEC_DOC, name="other")))
        with pytest.raises(StoreError, match="different spec"):
            CampaignStore.open(tmp_path / "s", other)

    def test_open_missing(self, tmp_path):
        with pytest.raises(StoreError, match="no campaign store"):
            CampaignStore.open(tmp_path / "nowhere")

    def test_torn_manifest_line_tolerated(self, tmp_path, fake_claim):
        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        store = CampaignStore.create(tmp_path / "s", spec)
        cell = spec.cells()[0]
        store.write_cell(run_cell(cell))
        with store.manifest_path.open("a") as fh:
            fh.write('{"cell": "e1-trunc')  # killed mid-append
        assert store.completed_ids() == {cell.cell_id}


class TestResume:
    def test_completed_cells_never_rerun(self, tmp_path, fake_claim):
        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        first = run_campaign(spec, tmp_path / "s", max_cells=2)
        assert first.stopped_early and first.n_run == 2
        assert len(FAKE_CALLS) == 2
        ran_first = set(FAKE_CALLS)
        second = run_campaign(spec, tmp_path / "s", resume=True)
        assert second.complete and second.n_skipped == 2 and second.n_run == 2
        # the two cells completed before the interruption did not re-execute
        assert len(FAKE_CALLS) == 4
        assert set(FAKE_CALLS[2:]) == {0, 1, 2, 3} - ran_first

    def test_resumed_store_matches_uninterrupted(self, tmp_path, fake_claim):
        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        run_campaign(spec, tmp_path / "a", max_cells=3)
        run_campaign(spec, tmp_path / "a", resume=True)
        run_campaign(spec, tmp_path / "b")

        def strip(rec):
            return {k: v for k, v in rec.items() if k not in ("runtime_seconds", "cache", "worker")}

        recs_a = [strip(r) for r in CampaignStore.open(tmp_path / "a").cell_records()]
        recs_b = [strip(r) for r in CampaignStore.open(tmp_path / "b").cell_records()]
        assert recs_a == recs_b

    def test_run_without_resume_on_existing_store_errors(self, tmp_path, fake_claim):
        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        run_campaign(spec, tmp_path / "s", max_cells=1)
        with pytest.raises(StoreError, match="--resume"):
            run_campaign(spec, tmp_path / "s")

    def test_resume_of_complete_store_is_noop(self, tmp_path, fake_claim):
        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        run_campaign(spec, tmp_path / "s")
        calls = len(FAKE_CALLS)
        report = run_campaign(spec, tmp_path / "s", resume=True)
        assert report.complete and report.n_run == 0
        assert len(FAKE_CALLS) == calls


@pytest.fixture
def small_store(tmp_path, fake_claim):
    spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
    run_campaign(spec, tmp_path / "store")
    return tmp_path / "store"


class TestQuery:
    def test_where_filters(self, small_store):
        out = run_query(str(small_store), where=["seed>=2"], fmt="json")
        rows = json.loads(out)
        assert len(rows) == 2 and all(r["seed"] >= 2 for r in rows)
        out = run_query(str(small_store), where=["seed!=0"], fmt="json")
        assert len(json.loads(out)) == 3
        assert run_query(str(small_store), where=["seed=99"]) == "(no cells match)"

    def test_where_string_equality(self, small_store):
        rows = json.loads(run_query(str(small_store), where=["claim=e1"], fmt="json"))
        assert len(rows) == 4

    def test_malformed_where(self):
        with pytest.raises(QueryError, match="malformed --where"):
            parse_where("not a condition")

    def test_columns_projection_and_unknown(self, small_store):
        out = run_query(str(small_store), columns=["cell", "seed"], fmt="csv")
        header = out.splitlines()[0]
        assert header == "cell,seed"
        with pytest.raises(QueryError, match="unknown column"):
            run_query(str(small_store), columns=["nope"])

    def test_formats(self, small_store):
        table = run_query(str(small_store), fmt="table")
        assert "cell" in table and "passed" in table and "==" in table
        csv_out = run_query(str(small_store), fmt="csv")
        assert len(csv_out.splitlines()) == 5  # header + 4 cells
        json_rows = json.loads(run_query(str(small_store), fmt="json"))
        assert len(json_rows) == 4 and json_rows[0]["claim"] == "e1"
        with pytest.raises(QueryError, match="unknown format"):
            format_rows([{"a": 1}], ["a"], "yaml")

    def test_rows_mode_exposes_row_fields(self, small_store):
        rows = json.loads(run_query(str(small_store), fmt="json", include_rows=True))
        assert all("width" in r and "row" in r for r in rows)
        assert all(r["width"] == 3 for r in rows)
        # non-finite row values render as their strict-JSON string forms
        assert all(r["bound"] == "inf" and r["gap"] == "nan" for r in rows)

    def test_flatten_and_select(self, small_store):
        recs = list(CampaignStore.open(small_store).cell_records())
        flat = flatten_cells(recs)
        cols = select_columns(flat, None)
        assert cols[:4] == ["cell", "claim", "profile", "seed"]


class TestAggregation:
    def test_group_reduce(self):
        rows = [
            {"claim": "e1", "runtime_seconds": 1.0, "passed": True},
            {"claim": "e1", "runtime_seconds": 3.0, "passed": False},
            {"claim": "e2", "runtime_seconds": 2.0, "passed": True},
        ]
        out = group_reduce(
            rows,
            by=("claim",),
            metrics={"runtime_seconds": "mean", "passed": "all", "claim": "count"},
        )
        assert out[0] == {
            "claim": "e1", "mean_runtime_seconds": 2.0, "all_passed": False, "n_cells": 2,
        }
        assert out[1]["mean_runtime_seconds"] == 2.0 and out[1]["all_passed"] is True

    def test_group_reduce_unknown_agg(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            group_reduce([], by=("a",), metrics={"a": "median"})

    def test_campaign_claim_summary(self, small_store):
        summary = campaign_claim_summary(small_store)
        assert len(summary) == 1
        assert summary[0]["claim"] == "e1"
        assert summary[0]["n_cells"] == 4
        assert summary[0]["pass_rate"] == 1.0


class TestResultsDir:
    def test_campaign_store_honors_results_dir_env(self, tmp_path, monkeypatch, fake_claim, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "redirected"))
        spec_path = write_spec(tmp_path, FAKE_SPEC_DOC)
        assert main(["campaign", "run", str(spec_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "redirected" / "campaigns" / "fake" / "store.json").is_file()

    def test_unwritable_results_dir_is_a_clear_error(self, tmp_path, monkeypatch):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the directory should go")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(blocker))
        with pytest.raises(ResultsDirError, match="REPRO_RESULTS_DIR"):
            resolve_results_dir("campaigns/x")

    def test_cli_reports_unwritable_dir(self, tmp_path, monkeypatch, capsys):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(blocker))
        spec_path = write_spec(tmp_path, FAKE_SPEC_DOC)
        assert main(["campaign", "run", str(spec_path)]) == 2
        assert "REPRO_RESULTS_DIR" in capsys.readouterr().err


class TestCampaignCli:
    def test_cells_action(self, tmp_path, capsys):
        assert main(["campaign", "cells", str(write_spec(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out and "e1-" in out

    def test_run_resume_and_exit_codes(self, tmp_path, fake_claim, capsys):
        spec_path = write_spec(tmp_path, FAKE_SPEC_DOC)
        store = tmp_path / "s"
        assert main([
            "campaign", "run", str(spec_path), "--store", str(store), "--max-cells", "2",
        ]) == 3
        assert "relaunch with --resume" in capsys.readouterr().err
        assert main([
            "campaign", "run", str(spec_path), "--store", str(store), "--resume",
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign complete: all 4 cells hold" in out
        assert "per-claim rollup" in out

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["campaign", "run", str(bad)]) == 2
        assert "campaign:" in capsys.readouterr().err

    def test_failed_cell_exits_1(self, tmp_path, fake_claim, monkeypatch, capsys):
        monkeypatch.setitem(
            REGISTRY, "e1",
            replace(REGISTRY["e1"], check=lambda rows, profile: ["boom"]),
        )
        spec_path = write_spec(tmp_path, FAKE_SPEC_DOC)
        code = main(["campaign", "run", str(spec_path), "--store", str(tmp_path / "s")])
        assert code == 1
        assert "FAILED" in capsys.readouterr().err

    def test_query_cli(self, small_store, capsys):
        assert main(["query", str(small_store), "--where", "seed=1"]) == 0
        out = capsys.readouterr().out
        assert "1 cells" in out
        assert main(["query", str(small_store), "--format", "csv"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 5

    def test_query_bad_store_exits_2(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "nope")]) == 2
        assert "query:" in capsys.readouterr().err

    def test_query_bad_where_exits_2(self, small_store, capsys):
        assert main(["query", str(small_store), "--where", "???"]) == 2
        assert "malformed" in capsys.readouterr().err


class TestPoolExecution:
    def test_jobs_2_produces_identical_store(self, tmp_path):
        """Real registry claims through the process pool, vs serial."""
        doc = dict(
            SPEC_DOC,
            name="pool",
            grid={"claim": ["e1"], "n": [24, 32], "seed": [0, 1]},
        )
        spec = load_spec(write_spec(tmp_path, doc))
        run_campaign(spec, tmp_path / "serial", jobs=1)
        run_campaign(spec, tmp_path / "pool", jobs=2)

        def strip(rec):
            return {k: v for k, v in rec.items() if k not in ("runtime_seconds", "cache", "worker")}

        serial = [strip(r) for r in CampaignStore.open(tmp_path / "serial").cell_records()]
        pooled = [strip(r) for r in CampaignStore.open(tmp_path / "pool").cell_records()]
        assert serial == pooled
        assert all(r["passed"] for r in serial)


class TestCampaignTelemetry:
    def test_store_grows_a_snapshot_stream(self, tmp_path, fake_claim):
        from repro.obs.telemetry import read_snapshots

        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        run_campaign(spec, tmp_path / "s")
        store = CampaignStore.open(tmp_path / "s")
        snaps = read_snapshots(store.telemetry_path)
        assert snaps, "run_campaign wrote no telemetry snapshots"
        final = snaps[-1]
        assert final["kind"] == "campaign"
        assert final["name"] == "fake"
        assert final["cells"] == {"total": 4, "done": 4, "failed": 0, "remaining": 0}
        assert final["parent"]["rss_bytes"] > 0
        # One worker slot (jobs=1 runs in-process) with all 4 cells on it.
        (slot,) = final["workers"].values()
        assert slot["cells"] == 4
        assert slot["rss_bytes"] > 0

    def test_records_carry_worker_samples(self, tmp_path, fake_claim):
        import os

        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        run_campaign(spec, tmp_path / "s")
        for rec in CampaignStore.open(tmp_path / "s").cell_records():
            w = rec["worker"]
            assert w["pid"] == os.getpid()  # jobs=1: in-process
            assert w["rss_bytes"] > 0
            assert "telemetry" not in rec  # merged + stripped before disk

    def test_pooled_snapshot_tracks_worker_pids(self, tmp_path, fake_claim):
        from repro.obs.telemetry import read_snapshots

        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        run_campaign(spec, tmp_path / "s", jobs=2)
        final = read_snapshots(CampaignStore.open(tmp_path / "s").telemetry_path)[-1]
        assert sum(w["cells"] for w in final["workers"].values()) == 4
        assert final["cells"]["done"] == 4

    def test_live_view_writes_to_stream(self, tmp_path, fake_claim):
        import io

        buf = io.StringIO()
        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        run_campaign(spec, tmp_path / "s", live=True, live_stream=buf)
        out = buf.getvalue()
        # Non-TTY: one compact line per cell, then the final full panel.
        assert out.count("live: ") == 4
        assert "live: 4/4 done, 0 failed" in out
        assert "4/4 done, 0 failed, 0 remaining" in out

    def test_cli_live_flag(self, tmp_path, fake_claim, capsys):
        spec_path = write_spec(tmp_path, FAKE_SPEC_DOC)
        assert main([
            "campaign", "run", str(spec_path), "--store", str(tmp_path / "s"), "--live",
        ]) == 0
        out = capsys.readouterr().out
        assert "live: " in out
        assert "campaign complete: all 4 cells hold" in out

    def test_final_snapshot_forced_even_for_noop_resume(self, tmp_path, fake_claim):
        from repro.obs.telemetry import read_snapshots

        spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
        run_campaign(spec, tmp_path / "s")
        store = CampaignStore.open(tmp_path / "s")
        before = len(read_snapshots(store.telemetry_path))
        run_campaign(spec, tmp_path / "s", resume=True)  # nothing left to run
        snaps = read_snapshots(store.telemetry_path)
        assert len(snaps) > before  # the forced final write still lands
        assert snaps[-1]["cells"]["done"] == 4

    def test_traced_campaign_merges_cell_spans(self, tmp_path, fake_claim):
        from repro import obs
        from repro.obs import trace

        tracer = obs.enable(fresh=True)
        try:
            spec = load_spec(write_spec(tmp_path, FAKE_SPEC_DOC))
            run_campaign(spec, tmp_path / "s", jobs=2)
            cell_spans = [
                e for e in tracer.events() if e["name"] == "campaign.cell"
            ]
            assert len(cell_spans) == 4
            assert len({e["pid"] for e in cell_spans}) >= 2, (
                "expected spans from >= 2 pool workers"
            )
            assert trace.active() is tracer  # pool teardown left the parent tracer
        finally:
            obs.disable()
