"""Smoke tests for the experiment harnesses (scaled-down parameters).

These verify every harness runs, produces the documented columns, and
that the headline claim of each experiment holds at small scale; the
full-scale tables live in ``benchmarks/``.
"""

from __future__ import annotations

import math


from repro.analysis.routing_experiments import (
    e6_balancing_competitive,
    e7_tgi_throughput,
    e9_honeycomb,
    e12_buffer_tradeoff,
)
from repro.analysis.topology_experiments import (
    e1_degree_connectivity,
    e2_energy_stretch,
    e3_distance_stretch_civilized,
    e4_interference_scaling,
    e5_schedule_replacement,
    e10_topology_zoo,
    e11_local_protocol,
)


class TestTopologyExperiments:
    def test_e1_rows_and_claims(self):
        rows = e1_degree_connectivity(
            ns=(40,), thetas=(math.pi / 6,), distributions=("uniform", "ring"), rng=0
        )
        assert len(rows) == 2
        for r in rows:
            assert r["N_connected"]
            assert r["within_bound"]

    def test_e2_stretch_bounded(self):
        rows = e2_energy_stretch(
            ns=(40,),
            thetas=(math.pi / 9,),
            kappas=(2.0,),
            distributions=("uniform",),
            rng=0,
        )
        assert len(rows) == 1
        assert rows[0]["energy_stretch_max"] < 3.0
        assert rows[0]["disconnected_pairs"] == 0
        assert rows[0]["yao_max_degree"] >= rows[0]["N_max_degree"] - 2

    def test_e3_civilized(self):
        rows = e3_distance_stretch_civilized(
            ns=(40,), lams=(0.5,), thetas=(math.pi / 9,), rng=0
        )
        assert rows[0]["connected"]
        assert rows[0]["distance_stretch_max"] < 5.0

    def test_e4_interference_scaling(self):
        rows = e4_interference_scaling(ns=(40, 80), deltas=(0.5,), trials=1, rng=0)
        assert len(rows) == 2
        assert all(r["I_N_mean"] > 0 for r in rows)

    def test_e5_congestion_bound(self):
        rows = e5_schedule_replacement(ns=(40,), steps=5, rng=0)
        assert rows[0]["within_bound"]
        assert rows[0]["max_edge_congestion"] <= 6

    def test_e10_zoo_rows(self):
        rows = e10_topology_zoo(n=40, distributions=("uniform",), rng=0)
        names = {r["topology"] for r in rows}
        assert {"ThetaALG(N)", "Gabriel", "MST", "Gstar"} <= names
        theta_row = next(r for r in rows if r["topology"] == "ThetaALG(N)")
        assert theta_row["connected"]

    def test_e11_local_protocol(self):
        rows = e11_local_protocol(ns=(30,), rng=0)
        assert rows[0]["matches_centralized"]
        assert rows[0]["rounds"] == 3


class TestRoutingExperiments:
    def test_e6_rows(self):
        rows = e6_balancing_competitive(epsilons=(0.25,), duration=200, rng=0)
        base = [r for r in rows if r["workload"] == "ring/streams"]
        assert base
        assert base[0]["throughput_ratio"] > 0.4
        assert base[0]["cost_ratio"] <= base[0]["cost_bound"]

    def test_e7_above_floor(self):
        rows = e7_tgi_throughput(trials=1, duration=1200, n=50, rng=0)
        assert rows[0]["above_floor"]

    def test_e9_lemma37(self):
        rows = e9_honeycomb(deltas=(0.5,), duration=200, rng=0)
        assert all(r["above_floor"] for r in rows)
        under = next(r for r in rows if r["regime"] == "underload")
        assert under["delivery_fraction"] > 0.75

    def test_e21_frequency_scaling(self):
        from repro.analysis.routing_experiments import e21_frequency_sweep

        rows = e21_frequency_sweep(deltas=(1, 4), duration=250, rng=0)
        assert rows[1]["throughput_ratio"] >= rows[0]["throughput_ratio"] - 0.03

    def test_e5c_packet_transform_smoke(self):
        from repro.analysis.topology_experiments import e5c_packet_transform

        rows = e5c_packet_transform(ns=(40,), n_packets=10, rng=0)
        assert rows[0]["inflation"] <= rows[0]["interference_I"] + 1

    def test_e13_agreement(self):
        from repro.analysis.ablation_experiments import e13_interference_models

        rows = e13_interference_models(
            n=64, deltas=(0.5,), betas=(2.0,), sets_per_config=30, rng=0
        )
        assert rows[0]["agreement"] > 0.5

    def test_e14_parity(self):
        from repro.analysis.ablation_experiments import e14_local_vs_global

        rows = e14_local_vs_global(ns=(48,), rng=0)
        assert all(r["disconnected"] == 0 for r in rows)

    def test_e15_probe(self):
        import math

        from repro.analysis.ablation_experiments import e15_spanner_probe

        rows = e15_spanner_probe(n=48, thetas=(math.pi / 9,), trials=1, rng=0)
        assert all(math.isfinite(r["worst_distance_stretch"]) for r in rows)

    def test_e16_churn(self):
        from repro.analysis.mobility_experiments import e16_mobility_churn

        rows = e16_mobility_churn(n=25, speeds=(0.0, 0.02), steps=150, rng=0)
        assert rows[0]["balancing_delivered"] > 0
        assert len(rows) == 2

    def test_e17_geographic(self):
        from repro.analysis.geographic_experiments import e17_geographic_routing

        rows = e17_geographic_routing(n=60, n_pairs=50, rng=0)
        names = {r["topology"] for r in rows}
        assert "Gstar" in names and "MST" in names
        by = {r["topology"]: r for r in rows}
        assert by["Gstar"]["greedy_delivery_rate"] >= by["MST"]["greedy_delivery_rate"]

    def test_e18_anycast(self):
        from repro.analysis.anycast_experiments import e18_anycast

        rows = e18_anycast(n=40, group_sizes=(1, 4), duration=150, rng=0)
        assert rows[0]["anycast_delivered"] == rows[0]["unicast_delivered"]  # m=1 sanity
        assert rows[1]["anycast_delivered"] > 0

    def test_e12_monotone_in_height(self):
        rows = e12_buffer_tradeoff(thresholds=(1,), heights=(4, 64), duration=150, rng=0)
        small = next(r for r in rows if r["height_H"] == 4)
        big = next(r for r in rows if r["height_H"] == 64)
        assert big["delivered"] >= small["delivered"]
