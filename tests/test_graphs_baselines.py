"""Tests for the proximity-graph baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.pointsets import uniform_points
from repro.graphs.baselines import (
    euclidean_mst,
    gabriel_graph,
    knn_graph,
    relative_neighborhood_graph,
    restricted_delaunay_graph,
)
from repro.graphs.metrics import degrees, energy_stretch, is_connected
from repro.graphs.transmission import transmission_graph


class TestGabriel:
    def test_triangle_keeps_all_edges(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]])
        g = gabriel_graph(pts)
        assert g.n_edges == 3

    def test_midpoint_blocks_edge(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, 0.0]])
        g = gabriel_graph(pts)
        assert not g.has_edge(0, 1)
        assert g.has_edge(0, 2)
        assert g.has_edge(1, 2)

    def test_definition_holds(self):
        pts = uniform_points(40, rng=0)
        g = gabriel_graph(pts)
        d2 = np.square(pts[:, None, :] - pts[None, :, :]).sum(-1)
        for i, j in g.edges:
            inside = d2[i] + d2[j] < d2[i, j] * (1 - 1e-12)
            inside[i] = inside[j] = False
            assert not inside.any()

    def test_contains_mst(self):
        """Gabriel ⊇ MST (classical inclusion)."""
        pts = uniform_points(50, rng=1)
        g = gabriel_graph(pts)
        mst = euclidean_mst(pts)
        for i, j in mst.edges:
            assert g.has_edge(int(i), int(j))

    def test_energy_optimal_kappa2(self):
        """Gabriel graph has energy-stretch 1 for κ = 2 vs the complete graph."""
        pts = uniform_points(30, rng=2)
        g = gabriel_graph(pts)
        complete = transmission_graph(pts, 10.0)
        es = energy_stretch(g, complete)
        assert es.max_stretch == pytest.approx(1.0, abs=1e-9)

    def test_range_restriction(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        g = gabriel_graph(pts, max_range=0.5)
        assert g.n_edges == 0


class TestRNG:
    def test_subset_of_gabriel(self):
        pts = uniform_points(50, rng=3)
        rng_g = relative_neighborhood_graph(pts)
        gab = gabriel_graph(pts)
        for i, j in rng_g.edges:
            assert gab.has_edge(int(i), int(j))

    def test_contains_mst(self):
        pts = uniform_points(50, rng=4)
        rng_g = relative_neighborhood_graph(pts)
        mst = euclidean_mst(pts)
        for i, j in mst.edges:
            assert rng_g.has_edge(int(i), int(j))

    def test_lune_definition(self):
        pts = uniform_points(30, rng=5)
        g = relative_neighborhood_graph(pts)
        d = np.sqrt(np.square(pts[:, None, :] - pts[None, :, :]).sum(-1))
        for i, j in g.edges:
            blocked = np.maximum(d[i], d[j]) < d[i, j] * (1 - 1e-12)
            blocked[i] = blocked[j] = False
            assert not blocked.any()

    def test_equilateral_lune(self):
        """A witness exactly on the lune boundary does not block."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        g = relative_neighborhood_graph(pts)
        assert g.n_edges == 3


class TestRestrictedDelaunay:
    def test_planar_edge_count(self):
        pts = uniform_points(60, rng=6)
        g = restricted_delaunay_graph(pts, 10.0)
        assert g.n_edges <= 3 * 60 - 6

    def test_connected_with_full_range(self):
        pts = uniform_points(60, rng=7)
        g = restricted_delaunay_graph(pts, 10.0)
        assert is_connected(g)

    def test_long_edges_removed(self):
        pts = uniform_points(60, rng=8)
        g = restricted_delaunay_graph(pts, 0.2)
        assert (g.edge_lengths <= 0.2 + 1e-9).all()

    def test_collinear_fallback(self):
        pts = np.column_stack([np.linspace(0, 1, 8), np.zeros(8)])
        g = restricted_delaunay_graph(pts, 0.5)
        assert is_connected(g)
        assert g.n_edges == 7


class TestKnn:
    def test_degree_at_least_k_possible(self):
        pts = uniform_points(40, rng=9)
        g = knn_graph(pts, 3)
        assert (degrees(g) >= 3).all()  # undirected union ⇒ ≥ k for interior

    def test_k_one_is_nearest_neighbor_graph(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        g = knn_graph(pts, 1)
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 3)
        assert not is_connected(g)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            knn_graph(np.zeros((3, 2)), 0)

    def test_range_restriction(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.5, 0.0]])
        g = knn_graph(pts, 2, max_range=1.2)
        assert not g.has_edge(0, 2)


class TestMST:
    def test_tree_edge_count(self):
        pts = uniform_points(30, rng=10)
        g = euclidean_mst(pts)
        assert g.n_edges == 29
        assert is_connected(g)

    @given(st.integers(3, 40), st.integers(0, 6))
    @settings(max_examples=20, deadline=None)
    def test_property_spanning_tree(self, n, seed):
        pts = uniform_points(n, rng=seed)
        g = euclidean_mst(pts)
        assert g.n_edges == n - 1
        assert is_connected(g)

    def test_matches_networkx(self):
        import networkx as nx

        pts = uniform_points(25, rng=11)
        g = euclidean_mst(pts)
        complete = transmission_graph(pts, 10.0)
        t = nx.minimum_spanning_tree(complete.to_networkx(), weight="length")
        assert g.total_cost == pytest.approx(
            sum(d["cost"] for _, _, d in t.edges(data=True))
        )
