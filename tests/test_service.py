"""The session service: protocol validation, streaming, failure paths.

Covers the ``repro-service/v1`` contracts end-to-end against a real
listener on a loopback port — malformed JSON, unknown sessions, event
injection refused against dead nodes, backpressure (429 at the session
bound, slow-consumer eviction on the SSE fan-out), the idle-TTL reaper
ending a stream mid-subscription, graceful drain, and the exact
delta-reconciliation contract of the series stream (baseline + sum of
deltas == final RoutingStats, including for late subscribers).
"""

import asyncio
import json

import pytest

from repro.dynamic.events import (
    EventTrace,
    LiveEventSchedule,
    NodeJoin,
    NodeMove,
    event_from_dict,
    event_to_dict,
)
from repro.obs.metrics import StepSeries
from repro.service.protocol import (
    ProtocolError,
    parse_event_rows,
    parse_session_config,
    parse_step_count,
)
from repro.service.server import ServiceServer
from repro.service.session import SessionManager
from repro.service.stream import Broadcast

TIMEOUT = 30.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


# ----------------------------------------------------------------------
# Minimal asyncio HTTP/SSE client helpers
# ----------------------------------------------------------------------
async def http(port, method, path, body=None, *, raw: "bytes | None" = None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = raw if raw is not None else (
        json.dumps(body).encode() if body is not None else b""
    )
    head = (
        f"{method} {path} HTTP/1.1\r\nhost: t\r\n"
        f"content-length: {len(payload)}\r\nconnection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    response = await reader.read(-1)
    writer.close()
    status = int(response.split(b" ", 2)[1])
    _, _, body_bytes = response.partition(b"\r\n\r\n")
    headers = response.partition(b"\r\n\r\n")[0].decode("latin-1").lower()
    if "application/json" in headers:
        return status, json.loads(body_bytes)
    return status, body_bytes.decode()


async def open_sse(port, sid):
    """Subscribe to a session's series stream; returns (reader, writer)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET /v1/sessions/{sid}/series HTTP/1.1\r\nhost: t\r\n\r\n".encode())
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    assert b"200 OK" in head and b"text/event-stream" in head
    return reader, writer


async def read_sse_events(reader, *, until_terminal=True):
    """Parse SSE frames until a terminal event (or EOF)."""
    events, buf = [], b""
    while True:
        while b"\n\n" in buf:
            block, buf = buf.split(b"\n\n", 1)
            text = block.decode().strip()
            if not text or text.startswith(":"):
                continue
            fields = dict(
                line.split(": ", 1) for line in text.split("\n") if ": " in line
            )
            events.append((fields["event"], json.loads(fields["data"])))
            if until_terminal and events[-1][0] in ("end", "evicted"):
                return events
        chunk = await reader.read(4096)
        if not chunk:
            return events
        buf += chunk


# ----------------------------------------------------------------------
# Protocol validation (no sockets)
# ----------------------------------------------------------------------
class TestProtocol:
    def test_defaults_and_bounds(self):
        cfg = parse_session_config({"n": 100, "seed": 7})
        assert cfg.n == 100 and cfg.dests == (0,) and cfg.max_nodes == 200
        with pytest.raises(ProtocolError) as exc:
            parse_session_config({"n": 100_000})  # over quick-profile cap
        assert exc.value.status == 400
        with pytest.raises(ProtocolError):
            parse_session_config({"n": 64, "bogus_knob": 1})
        with pytest.raises(ProtocolError):
            parse_session_config({"dests": [99]})  # out of [0, n)
        with pytest.raises(ProtocolError):
            parse_session_config([1, 2, 3])

    def test_event_rows(self):
        rows = parse_event_rows(
            {"events": [
                {"kind": "fail", "node": 3},
                {"kind": "move", "node": 1, "pos": [0.5, 0.5]},
                {"kind": "inject", "node": 2, "dest": 0, "count": 4},
            ]}
        )
        assert [r["kind"] for r in rows] == ["fail", "move", "inject"]
        for bad in (
            None,
            {"events": []},
            {"events": [{"kind": "explode", "node": 1}]},
            {"events": [{"kind": "join", "node": 1}]},  # join needs pos
            {"events": [{"kind": "move", "node": 1, "pos": [float("nan"), 0]}]},
            {"events": [{"kind": "inject", "node": 1}]},  # inject needs dest
        ):
            with pytest.raises(ProtocolError) as exc:
                parse_event_rows(bad)
            assert exc.value.status == 400

    def test_step_count(self):
        assert parse_step_count({"steps": "25"}, "quick") == 25
        assert parse_step_count({}, "quick") == 1
        for bad in ({"steps": "0"}, {"steps": "1000001"}, {"steps": "nope"}):
            with pytest.raises(ProtocolError):
                parse_step_count(bad, "quick")


class TestLiveEventSchedule:
    def test_append_at_and_trace_round_trip(self):
        sched = LiveEventSchedule()
        sched.append(3, NodeJoin(9, 0.2, 0.3))
        sched.append(1, NodeMove(2, 0.5, 0.5))
        assert len(sched) == 2 and sched.horizon == 4
        assert [type(e).__name__ for e in sched.at(3)] == ["NodeJoin"]
        assert sched.at(0) == []
        trace = sched.to_trace(horizon=10)
        assert isinstance(trace, EventTrace)
        assert trace.horizon == 10 and len(trace) == 2
        # Wire rows survive a dict round-trip exactly.
        for _, ev in trace:
            assert event_from_dict(event_to_dict(ev)) == ev


# ----------------------------------------------------------------------
# Broadcast backpressure (no sockets)
# ----------------------------------------------------------------------
class TestBroadcastEviction:
    def test_slow_consumer_is_evicted_with_terminal_frame(self):
        async def scenario():
            bc = Broadcast(queue_size=4)
            slow, fast = bc.subscribe(), bc.subscribe()
            for i in range(4):
                bc.publish("step", {"i": i})
                assert (await fast.next_event()) == ("step", {"i": i})
            bc.publish("step", {"i": 4})  # overflows `slow` only
            assert bc.evictions == 1 and bc.n_subscribers == 1
            assert not fast.evicted
            # The slow consumer still drains its backlog, then sees the
            # terminal eviction frame and is closed.
            seen = []
            while not slow.closed:
                seen.append(await slow.next_event())
            assert seen[-1][0] == "evicted"
            assert slow.evicted
            # Surviving subscriber keeps receiving, in order.
            bc.publish("step", {"i": 5})
            assert (await fast.next_event())[1] == {"i": 4}
            assert (await fast.next_event())[1] == {"i": 5}

        run(scenario())


# ----------------------------------------------------------------------
# Server end-to-end over loopback
# ----------------------------------------------------------------------
async def start_server(**kwargs):
    server = ServiceServer(port=0, **kwargs)
    await server.start()
    return server


CFG = {"n": 32, "seed": 5, "traffic_rate": 2.0}


class TestServerFailurePaths:
    def test_malformed_json_is_400(self):
        async def scenario():
            server = await start_server()
            try:
                status, body = await http(
                    server.port, "POST", "/v1/sessions", raw=b"{not json"
                )
                assert status == 400 and body["error"]["code"] == "invalid_json"
                status, body = await http(server.port, "BLARG!", "/v1/sessions")
                assert status == 405  # unknown method on a real route
                status, body = await http(server.port, "GET", "/nowhere")
                assert status == 404 and body["error"]["code"] == "not_found"
                status, body = await http(server.port, "PUT", "/v1/sessions")
                assert status == 405 and body["error"]["code"] == "method_not_allowed"
            finally:
                await server.shutdown(reason="test")

        run(scenario())

    def test_unknown_session_is_404_everywhere(self):
        async def scenario():
            server = await start_server()
            try:
                for method, path in (
                    ("GET", "/v1/sessions/s9999-abc"),
                    ("DELETE", "/v1/sessions/s9999-abc"),
                    ("POST", "/v1/sessions/s9999-abc/step?steps=1"),
                    ("GET", "/v1/sessions/s9999-abc/series"),
                ):
                    status, body = await http(server.port, method, path)
                    assert status == 404, (method, path)
                    assert body["error"]["code"] == "unknown_session"
            finally:
                await server.shutdown(reason="test")

        run(scenario())

    def test_dead_node_event_is_409(self):
        async def scenario():
            server = await start_server()
            try:
                _, created = await http(server.port, "POST", "/v1/sessions", CFG)
                sid = created["session"]["id"]
                ev = f"/v1/sessions/{sid}/events"
                status, _ = await http(
                    server.port, "POST", ev, {"events": [{"kind": "fail", "node": 3}]}
                )
                assert status == 200
                await http(server.port, "POST", f"/v1/sessions/{sid}/step?steps=1")
                # Node 3 is now down: failing it again, moving it, or
                # injecting traffic at it must 409, atomically.
                for rows, code in (
                    ([{"kind": "fail", "node": 3}], "dead_node"),
                    ([{"kind": "leave", "node": 3}], "dead_node"),
                    ([{"kind": "inject", "node": 3, "dest": 0, "count": 1}], "dead_node"),
                    ([{"kind": "join", "node": 3, "pos": [0.1, 0.1]}], "bad_event"),
                    ([{"kind": "recover", "node": 4}], "bad_event"),
                    ([{"kind": "fail", "node": 31000}], "bad_node"),
                ):
                    status, body = await http(server.port, "POST", ev, {"events": rows})
                    assert status == 409, rows
                    assert body["error"]["code"] == code, rows
                # Recover works, and afterwards the node takes traffic.
                status, _ = await http(
                    server.port, "POST", ev, {"events": [{"kind": "recover", "node": 3}]}
                )
                assert status == 200
                await http(server.port, "POST", f"/v1/sessions/{sid}/step?steps=1")
                status, _ = await http(
                    server.port, "POST", ev,
                    {"events": [{"kind": "inject", "node": 3, "dest": 0, "count": 1}]},
                )
                assert status == 200
            finally:
                await server.shutdown(reason="test")

        run(scenario())

    def test_cross_batch_pending_events_are_validated(self):
        """A batch must be validated against rows already scheduled at
        the same (not-yet-applied) step by earlier POSTs — otherwise two
        individually-valid batches wedge the engine mid-step."""

        async def scenario():
            server = await start_server()
            try:
                _, created = await http(server.port, "POST", "/v1/sessions", CFG)
                sid = created["session"]["id"]
                ev = f"/v1/sessions/{sid}/events"
                status, _ = await http(
                    server.port, "POST", ev, {"events": [{"kind": "leave", "node": 5}]}
                )
                assert status == 200
                # Same event again in a *separate* batch, no step between:
                # the pending leave must be visible to validation.
                status, body = await http(
                    server.port, "POST", ev, {"events": [{"kind": "leave", "node": 5}]}
                )
                assert status == 409 and body["error"]["code"] == "dead_node"
                # Traffic addressed at the pending-leave node is refused
                # the same way the engine would refuse it after applying.
                status, body = await http(
                    server.port, "POST", ev,
                    {"events": [{"kind": "inject", "node": 5, "dest": 0, "count": 1}]},
                )
                assert status == 409 and body["error"]["code"] == "dead_node"
                # Pending fail/recover chains across batches stay legal.
                for rows in (
                    [{"kind": "fail", "node": 7}],
                    [{"kind": "recover", "node": 7}],
                ):
                    status, _ = await http(server.port, "POST", ev, {"events": rows})
                    assert status == 200
                # The accumulated step applies cleanly: nothing wedged.
                status, _ = await http(
                    server.port, "POST", f"/v1/sessions/{sid}/step?steps=2"
                )
                assert status == 200
                _, detail = await http(server.port, "GET", f"/v1/sessions/{sid}")
                assert detail["session"]["events_applied"] == 3
            finally:
                await server.shutdown(reason="test")

        run(scenario())

    def test_session_limit_is_429(self):
        async def scenario():
            server = await start_server(max_sessions=2)
            try:
                for _ in range(2):
                    status, _ = await http(server.port, "POST", "/v1/sessions", CFG)
                    assert status == 201
                status, body = await http(server.port, "POST", "/v1/sessions", CFG)
                assert status == 429 and body["error"]["code"] == "session_limit"
                # Deleting one frees a slot.
                _, listing = await http(server.port, "GET", "/v1/sessions")
                sid = listing["sessions"][0]["id"]
                status, _ = await http(server.port, "DELETE", f"/v1/sessions/{sid}")
                assert status == 200
                status, _ = await http(server.port, "POST", "/v1/sessions", CFG)
                assert status == 201
            finally:
                await server.shutdown(reason="test")

        run(scenario())


class TestStreaming:
    def test_deltas_reconcile_exactly_including_late_subscriber(self):
        async def scenario():
            server = await start_server()
            try:
                _, created = await http(server.port, "POST", "/v1/sessions", CFG)
                sid = created["session"]["id"]
                # Step before subscribing: the subscriber is late and
                # must be handed a non-zero baseline.
                await http(server.port, "POST", f"/v1/sessions/{sid}/step?steps=10")
                reader, writer = await open_sse(server.port, sid)
                await http(
                    server.port, "POST", f"/v1/sessions/{sid}/events",
                    {"events": [
                        {"kind": "fail", "node": 7},
                        {"kind": "inject", "node": 3, "dest": 0, "count": 5},
                    ]},
                )
                await http(server.port, "POST", f"/v1/sessions/{sid}/step?steps=15")
                _, deleted = await http(server.port, "DELETE", f"/v1/sessions/{sid}")
                final = deleted["final_stats"]
                events = await read_sse_events(reader)
                writer.close()
                kinds = [e for e, _ in events]
                assert kinds[0] == "hello" and kinds[-1] == "end"
                assert "events" in kinds  # the injection notification
                hello = events[0][1]
                assert hello["from_step"] == 10
                assert hello["baseline"]["injected"] > 0
                deltas = [d for e, d in events if e == "step"]
                assert len(deltas) == 15
                assert [d["step"] for d in deltas] == list(range(10, 25))
                for name in ("injected", "accepted", "delivered", "dropped",
                             "attempts", "churn_drops", "events_applied"):
                    total = hello["baseline"][name] + sum(d[name] for d in deltas)
                    if name in final:
                        assert total == final[name], name
                end = events[-1][1]
                assert end["reason"] == "deleted"
                assert end["final_stats"] == final
            finally:
                await server.shutdown(reason="test")

        run(scenario())

    def test_ttl_reaper_ends_idle_session_mid_stream(self):
        async def scenario():
            server = await start_server(session_ttl=0.3, reap_interval=0.05)
            try:
                _, created = await http(server.port, "POST", "/v1/sessions", CFG)
                sid = created["session"]["id"]
                await http(server.port, "POST", f"/v1/sessions/{sid}/step?steps=5")
                reader, writer = await open_sse(server.port, sid)
                # Subscribing is passive — it does not refresh the TTL;
                # the reaper must end the stream with reason=expired.
                events = await read_sse_events(reader)
                writer.close()
                assert events[-1][0] == "end"
                assert events[-1][1]["reason"] == "expired"
                status, _ = await http(server.port, "GET", f"/v1/sessions/{sid}")
                assert status == 404
            finally:
                await server.shutdown(reason="test")

        run(scenario())

    def test_graceful_drain_ends_streams_and_refuses_new_work(self):
        async def scenario():
            server = await start_server()
            _, created = await http(server.port, "POST", "/v1/sessions", CFG)
            sid = created["session"]["id"]
            await http(server.port, "POST", f"/v1/sessions/{sid}/step?steps=5")
            reader, writer = await open_sse(server.port, sid)
            await server.shutdown(reason="server-drain")
            events = await read_sse_events(reader)
            writer.close()
            assert events[-1][0] == "end"
            assert events[-1][1]["reason"] == "server-drain"
            assert events[-1][1]["steps"] == 5
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", server.port)

        run(scenario())


class TestSessionManagerUnit:
    def test_ttl_reaper_uses_injected_clock_and_skips_busy(self):
        async def scenario():
            now = [0.0]
            manager = SessionManager(max_sessions=4, ttl_seconds=10.0, clock=lambda: now[0])
            cfg = parse_session_config({"n": 16})
            a = manager.create(cfg)
            b = manager.create(cfg)
            now[0] = 11.0
            b.touch()
            async with a.lock:  # busy sessions are never reaped
                assert manager.reap_idle() == []
            assert manager.reap_idle() == [a.id]
            assert len(manager) == 1 and a.closed
            with pytest.raises(ProtocolError) as exc:
                manager.get(a.id)
            assert exc.value.status == 404
            assert manager.expired_total == 1

        run(scenario())

    def test_reservation_holds_session_bound(self):
        async def scenario():
            manager = SessionManager(max_sessions=1, ttl_seconds=10.0)
            cfg = parse_session_config({"n": 16})
            sid = manager.reserve()
            with pytest.raises(ProtocolError) as exc:  # slot is claimed pre-build
                manager.reserve()
            assert exc.value.status == 429
            session = manager.register(manager.build(sid, cfg))
            with pytest.raises(ProtocolError):
                manager.reserve()
            manager.delete(session.id)
            assert manager.reserve()
            manager.release()  # an abandoned build gives the slot back
            assert manager.reserve()

        run(scenario())

    def test_drain_waits_for_busy_sessions(self):
        async def scenario():
            manager = SessionManager(max_sessions=2, ttl_seconds=10.0)
            session = manager.create(parse_session_config({"n": 16}))
            await session.lock.acquire()  # a step batch is "in flight"
            drain = asyncio.create_task(manager.drain(reason="test-drain"))
            await asyncio.sleep(0.05)
            assert not drain.done() and not session.closed
            session.lock.release()
            assert await drain == 1
            assert session.closed and len(manager) == 0

        run(scenario())
