"""Tests for the guard-zone interference model and conflict machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.base import GeometricGraph
from repro.interference.conflict import (
    conflict_graph,
    greedy_interference_schedule,
    interference_degrees,
    interference_number,
    interference_sets,
)
from repro.interference.model import (
    InterferenceModel,
    edges_interfere,
    interference_radius,
    successful_transmissions,
)


def line_graph(xs: list[float]) -> GeometricGraph:
    """Nodes on a line at given x positions, consecutive edges."""
    pts = np.column_stack([np.asarray(xs, float), np.zeros(len(xs))])
    edges = [(i, i + 1) for i in range(len(xs) - 1)]
    return GeometricGraph(pts, edges)


class TestModelBasics:
    def test_radius(self):
        assert interference_radius(2.0, 0.5) == pytest.approx(3.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            InterferenceModel(-0.1)

    def test_region_contains_open_disk(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.5, 0.0], [1.4, 0.0]])
        m = InterferenceModel(0.5)  # guard radius 1.5 around 0 and 1
        inside = m.region_contains(pts, (0, 1), pts[[2, 3]])
        assert not inside[0]  # at exactly 1.5 from node 1 → boundary → outside
        assert inside[1]

    def test_pair_interferes_symmetric_api(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.2, 0.0], [2.2, 0.0]])
        m = InterferenceModel(0.5)
        assert m.pair_interferes(pts, (0, 1), (2, 3))
        assert m.pair_interferes(pts, (2, 3), (0, 1))

    def test_far_apart_no_interference(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [11.0, 0.0]])
        assert not edges_interfere(pts, (0, 1), (2, 3), 0.5)

    def test_asymmetric_interference_possible(self):
        """A long edge can interfere with a short one, not vice versa."""
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [5.5, 0.0], [5.6, 0.0]])
        m = InterferenceModel(0.5)
        mat = m.interference_matrix(pts, np.array([[0, 1], [2, 3]]))
        # Edge 0 (long, guard 6) covers both endpoints of edge 1.
        assert mat[1, 0]
        # Edge 1 (short, guard 0.15) covers no endpoint of edge 0.
        assert not mat[0, 1]


class TestSuccessMask:
    def test_both_fail_when_mutually_interfering(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.2, 0.0], [2.2, 0.0]])
        ok = successful_transmissions(pts, np.array([[0, 1], [2, 3]]), 0.5)
        assert not ok.any()

    def test_one_sided_interference_kills_victim_only(self):
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [5.5, 0.0], [5.6, 0.0]])
        ok = successful_transmissions(pts, np.array([[0, 1], [2, 3]]), 0.5)
        assert ok[0] and not ok[1]

    def test_singleton_succeeds(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        ok = successful_transmissions(pts, np.array([[0, 1]]), 0.5)
        assert ok.all()

    def test_empty(self):
        ok = successful_transmissions(np.zeros((2, 2)), np.empty((0, 2), int), 0.5)
        assert len(ok) == 0


class TestInterferenceSets:
    def test_line_adjacent_edges_interfere(self):
        g = line_graph([0.0, 1.0, 2.0, 3.0])
        sets = interference_sets(g, 0.5)
        # Middle edge interferes with both neighbors.
        assert set(sets[1].tolist()) == {0, 2}

    def test_symmetric_closure(self):
        g = line_graph([0.0, 1.0, 1.5, 4.0, 5.0])
        sets = interference_sets(g, 0.5)
        for k, s in enumerate(sets):
            for other in s:
                assert k in sets[int(other)]

    def test_matches_dense_matrix(self, small_world):
        _, _, _, topo = small_world
        g = topo.graph
        m = InterferenceModel(0.5)
        mat = m.interference_matrix(g.points, g.edges)
        sym = mat | mat.T
        sets = interference_sets(g, 0.5)
        for k in range(g.n_edges):
            assert set(sets[k].tolist()) == set(np.nonzero(sym[k])[0].tolist())

    def test_interference_number(self):
        g = line_graph([0.0, 1.0, 2.0, 3.0])
        assert interference_number(g, 0.5) == 2

    def test_empty_graph(self):
        g = GeometricGraph(np.zeros((2, 2)) + [[0, 0], [5, 5]], [])
        assert interference_number(g, 0.5) == 0
        assert interference_sets(g, 0.5) == []

    def test_degrees_align(self):
        g = line_graph([0.0, 1.0, 2.0, 3.0, 4.0])
        deg = interference_degrees(g, 0.5)
        assert len(deg) == g.n_edges
        assert deg.max() == interference_number(g, 0.5)


class TestConflictScheduling:
    def test_conflict_graph_structure(self):
        g = line_graph([0.0, 1.0, 2.0, 3.0])
        cg = conflict_graph(g, 0.5)
        assert cg.number_of_nodes() == 3
        assert cg.has_edge(0, 1) and cg.has_edge(1, 2)

    def test_schedule_covers_all_edges(self, small_world):
        _, _, _, topo = small_world
        rounds = greedy_interference_schedule(topo.graph, 0.5)
        covered = sorted(int(e) for r in rounds for e in r)
        assert covered == list(range(topo.graph.n_edges))

    def test_rounds_conflict_free(self, small_world):
        _, _, _, topo = small_world
        g = topo.graph
        m = InterferenceModel(0.5)
        for r in greedy_interference_schedule(g, 0.5):
            if len(r) > 1:
                assert not m.interference_matrix(g.points, g.edges[r]).any()

    def test_round_count_bounded(self, small_world):
        _, _, _, topo = small_world
        rounds = greedy_interference_schedule(topo.graph, 0.5)
        assert len(rounds) <= interference_number(topo.graph, 0.5) + 1

    def test_empty_graph_schedule(self):
        g = GeometricGraph(np.zeros((1, 2)), [])
        assert greedy_interference_schedule(g, 0.5) == []


class TestScalingSanity:
    @given(st.integers(20, 80), st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_interference_number_bounded_by_edge_count(self, n, seed):
        from repro.geometry.pointsets import uniform_points
        from repro.graphs.transmission import max_range_for_connectivity
        from repro.core.theta import theta_algorithm
        import math

        pts = uniform_points(n, rng=seed)
        d = max_range_for_connectivity(pts, slack=1.3)
        topo = theta_algorithm(pts, math.pi / 6, d)
        i_num = interference_number(topo.graph, 0.5)
        assert 0 <= i_num < topo.graph.n_edges
