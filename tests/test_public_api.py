"""Public-API surface checks: imports, __all__, and the quickstart flow."""

from __future__ import annotations

import math


import repro


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_exported(self):
        for name in (
            "theta_algorithm",
            "BalancingRouter",
            "RandomActivationMAC",
            "HoneycombRouter",
            "InterferenceModel",
            "LocalRuntime",
            "SimulationEngine",
        ):
            assert name in repro.__all__


class TestQuickstartFlow:
    """The README quickstart, executed end to end."""

    def test_topology_pipeline(self):
        pts = repro.uniform_points(80, rng=0)
        d = repro.max_range_for_connectivity(pts, slack=1.5)
        topo = repro.theta_algorithm(pts, math.pi / 9, d)
        gstar = repro.transmission_graph(pts, d)
        assert repro.is_connected(topo.graph)
        assert repro.max_degree(topo.graph) <= 4 * math.pi / (math.pi / 9) + 1
        es = repro.energy_stretch(topo.graph, gstar)
        assert es.max_stretch < 3.0

    def test_routing_pipeline(self):
        from repro import (
            BalancingConfig,
            BalancingRouter,
            SimulationEngine,
            stream_scenario,
        )

        pts = repro.uniform_points(40, rng=1)
        d = repro.max_range_for_connectivity(pts, slack=1.5)
        topo = repro.theta_algorithm(pts, math.pi / 9, d)
        scen = stream_scenario(topo.graph, 2, 80, rng=2)
        router = BalancingRouter(
            topo.graph.n_nodes, scen.destinations, BalancingConfig(2.0, 0.0, 64)
        )
        result = SimulationEngine.for_scenario(router, scen).run(80, drain=160)
        assert result.stats.delivered > 0

    def test_interference_pipeline(self):
        pts = repro.uniform_points(50, rng=3)
        d = repro.max_range_for_connectivity(pts, slack=1.5)
        topo = repro.theta_algorithm(pts, math.pi / 9, d)
        i_num = repro.interference_number(topo.graph, 0.5)
        assert i_num > 0
        rounds = repro.greedy_interference_schedule(topo.graph, 0.5)
        assert sum(len(r) for r in rounds) == topo.graph.n_edges
