"""Tests for the delay-tracking router façade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.routing_experiments import ring_graph
from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.sim.adversary import stream_scenario
from repro.sim.engine import SimulationEngine
from repro.sim.tracking import TrackedBalancingRouter


def make_tracked(n=4, dests=(3,), T=0.0, H=64) -> TrackedBalancingRouter:
    return TrackedBalancingRouter(
        BalancingRouter(n, list(dests), BalancingConfig(T, 0.0, H))
    )


LINE_EDGES = np.array([[0, 1], [1, 2], [2, 3]])
LINE_COSTS = np.ones(3)


class TestTracking:
    def test_single_packet_delay(self):
        r = make_tracked()
        r.run_step(LINE_EDGES, LINE_COSTS, injections=[(0, 3, 1)])  # t=0 inject
        for _ in range(5):
            r.run_step(LINE_EDGES, LINE_COSTS)
        assert r.stats.delivered == 1
        # Injected at clock 0, moved at steps 1, 2, 3 → delay 3.
        assert r.delays == [3]

    def test_fifo_order_within_buffer(self):
        r = make_tracked(n=2, dests=(1,))
        edge = np.array([[0, 1]])
        cost = np.ones(1)
        r.run_step(edge, cost, injections=[(0, 1, 1)])  # stamp 0
        r.run_step(edge, cost, injections=[(0, 1, 1)])  # stamp 1 (+1 moved)
        for _ in range(4):
            r.run_step(edge, cost)
        assert r.stats.delivered == 2
        assert r.delays == sorted(r.delays)  # FIFO: older packet first

    def test_consistency_invariant_enforced(self):
        r = make_tracked()
        # Bypass the façade to create drift → invariant must trip.
        r.router.inject(0, 3, 1)
        with pytest.raises(AssertionError, match="tracking drift"):
            r.run_step(LINE_EDGES, LINE_COSTS)

    def test_failed_transmission_keeps_stamp(self):
        r = make_tracked(n=2, dests=(1,))
        edge = np.array([[0, 1]])
        cost = np.ones(1)
        r.run_step(edge, cost, injections=[(0, 1, 1)])
        r.run_step(edge, cost, success_fn=lambda txs: [False] * len(txs))
        assert r.stats.delivered == 0
        assert r.total_packets() == 1
        r.run_step(edge, cost)
        assert r.stats.delivered == 1

    def test_same_throughput_as_untracked(self):
        g = ring_graph(10)
        scen = stream_scenario(g, 2, 60, rng=0)
        plain = BalancingRouter(g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 64))
        tracked = TrackedBalancingRouter(
            BalancingRouter(g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 64))
        )
        SimulationEngine.for_scenario(plain, scen).run(60, drain=60)
        SimulationEngine.for_scenario(tracked, scen).run(60, drain=60)
        assert plain.stats.delivered == tracked.stats.delivered

    def test_delay_summary(self):
        g = ring_graph(8)
        scen = stream_scenario(g, 2, 50, rng=1)
        r = TrackedBalancingRouter(
            BalancingRouter(g.n_nodes, scen.destinations, BalancingConfig(1.0, 0.0, 64))
        )
        SimulationEngine.for_scenario(r, scen).run(50, drain=100)
        s = r.delay_summary()
        assert s["count"] == r.stats.delivered > 0
        assert s["mean"] >= s["median"] * 0.1
        assert s["max"] >= s["p95"] >= s["median"] > 0

    def test_empty_summary(self):
        r = make_tracked()
        s = r.delay_summary()
        assert s["count"] == 0.0
