"""Tests for the ASCII renderer and scenario serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ascii_viz import render_graph_ascii, render_points_ascii
from repro.analysis.routing_experiments import ring_graph
from repro.sim.adversary import stream_scenario
from repro.sim.scenario_io import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


class TestAsciiViz:
    def test_empty(self):
        assert render_points_ascii(np.empty((0, 2))) == "(no points)"

    def test_all_nodes_drawn(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]])
        out = render_points_ascii(pts, width=40)
        assert out.count("o") == 3

    def test_highlight(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = render_points_ascii(pts, width=20, highlight={1})
        assert out.count("*") == 1
        assert out.count("o") == 1

    def test_edges_drawn(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        out = render_points_ascii(pts, np.array([[0, 1]]), width=30)
        assert "." in out  # connecting line

    def test_graph_wrapper(self):
        g = ring_graph(8)
        out = render_graph_ascii(g, width=40)
        assert out.count("o") == 8
        lines = out.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_points_ascii(np.zeros((1, 2)), width=2)

    def test_degenerate_collinear(self):
        pts = np.column_stack([np.linspace(0, 1, 5), np.zeros(5)])
        out = render_points_ascii(pts, width=30)
        assert out.count("o") >= 2  # some overlap allowed at grid scale


class TestScenarioIO:
    def test_roundtrip_dict(self):
        scen = stream_scenario(ring_graph(10), 2, 20, rng=0)
        data = scenario_to_dict(scen)
        back = scenario_from_dict(data)
        assert back.duration == scen.duration
        assert back.witness_delivered == scen.witness_delivered
        assert back.witness_buffer == scen.witness_buffer
        assert back.witness_avg_cost == pytest.approx(scen.witness_avg_cost)
        assert np.array_equal(back.graph.points, scen.graph.points)
        assert np.array_equal(back.graph.edges, scen.graph.edges)
        assert dict(back.injection_map) == dict(scen.injection_map)

    def test_roundtrip_file(self, tmp_path):
        scen = stream_scenario(ring_graph(8), 1, 10, rng=1)
        p = tmp_path / "scen.json"
        save_scenario(scen, p)
        back = load_scenario(p)
        assert back.witness_delivered == scen.witness_delivered
        assert back.name == scen.name

    def test_json_is_plain_types(self):
        import json

        scen = stream_scenario(ring_graph(8), 1, 5, rng=2)
        json.dumps(scenario_to_dict(scen))  # must not raise

    def test_version_check(self):
        scen = stream_scenario(ring_graph(8), 1, 5, rng=3)
        data = scenario_to_dict(scen)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            scenario_from_dict(data)

    def test_loaded_scenario_runs(self, tmp_path):
        """A reloaded scenario drives the engine identically."""
        from repro.core.balancing import BalancingConfig, BalancingRouter
        from repro.sim.engine import SimulationEngine

        scen = stream_scenario(ring_graph(10), 2, 40, rng=4)
        p = tmp_path / "s.json"
        save_scenario(scen, p)
        back = load_scenario(p)

        def run(s):
            r = BalancingRouter(
                s.graph.n_nodes, s.destinations, BalancingConfig(1.0, 0.0, 64)
            )
            SimulationEngine.for_scenario(r, s).run(s.duration, drain=s.duration)
            return r.stats.delivered

        assert run(scen) == run(back)
