"""Smoke tests: every example script runs cleanly end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: Path):
    args = [sys.executable, str(script)]
    if script.name == "topology_zoo.py":
        args.append("80")  # smaller n for the smoke run
    result = subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_discovered():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3
