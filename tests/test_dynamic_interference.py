"""Incremental interference-set maintenance: bit-identical to rebuilds.

The load-bearing guarantee of :mod:`repro.dynamic.interference` is that
after *every* event the maintained conflict rows equal
:func:`repro.interference.conflict.interference_sets` recomputed from
scratch on the maintained topology, row for row.  Asserted over 20
seeded random traces, the degenerate geometries reused from
``tests/test_kernel_equivalence.py``, and a 1000-event acceptance
trace, plus the MAC fast path, the staleness guard, and the
topology-version keying of ``cached_interference_sets``.
"""

import math

import numpy as np
import pytest

from repro import (
    DynamicInterference,
    DynamicMAC,
    IncrementalTheta,
    NodeJoin,
    NodeMove,
    interference_sets,
    max_range_for_connectivity,
    random_event_trace,
    uniform_points,
)
from repro.harness import cache as cache_mod
from repro.interference.conflict import InterferenceSets

THETA = math.pi / 9
DELTA = 0.5
SEEDS = list(range(20))

DEGENERATE_POINTS = {
    "collinear": np.column_stack([np.arange(12.0), np.zeros(12)]),
    "lattice": np.stack(
        np.meshgrid(np.arange(5.0), np.arange(5.0)), axis=-1
    ).reshape(-1, 2),
    "coincident": np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0], [1.0, 1.0]]),
    "two_points": np.array([[0.0, 0.0], [0.7, 0.2]]),
}


def _pair(n, seed, *, slack=1.5, delta=DELTA):
    pts = uniform_points(n, rng=seed)
    d0 = max_range_for_connectivity(pts, slack=slack)
    inc = IncrementalTheta(pts, THETA, d0)
    return pts, d0, inc, DynamicInterference(inc, delta)


class TestFromRows:
    def test_round_trip_matches_kernel_layout(self):
        pts, d0, inc, di = _pair(50, 3)
        ref = interference_sets(inc.snapshot_graph(), DELTA)
        keys = di.edge_codes()
        rebuilt = InterferenceSets.from_rows(keys, [di._rows[c] for c in keys.tolist()])
        assert rebuilt == ref

    def test_empty(self):
        s = InterferenceSets.from_rows(np.empty(0, dtype=np.int64), [])
        assert len(s) == 0


class TestSeedEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_trace_stays_identical(self, seed):
        pts, d0, inc, di = _pair(60, seed)
        trace = random_event_trace(
            pts, 40, move_sigma=d0 / 2.0, rng=np.random.default_rng(1000 + seed)
        )
        for ev in trace.events():
            di.update_event(inc.apply(ev))
            assert di.check_full_equivalence() == 0

    @pytest.mark.parametrize("name", sorted(DEGENERATE_POINTS))
    def test_degenerate_geometries(self, name):
        pts = DEGENERATE_POINTS[name]
        d0 = 1.5
        inc = IncrementalTheta(pts, THETA, d0)
        di = DynamicInterference(inc, DELTA)
        assert di.check_full_equivalence() == 0
        # Churn the degenerate configuration: move every node onto /
        # off coincident spots, then add one more coincident node.
        gen = np.random.default_rng(7)
        for node in range(len(pts)):
            target = pts[(node + 1) % len(pts)] + gen.normal(0, 0.05, 2)
            di.update_event(inc.apply(NodeMove(node=node, x=target[0], y=target[1])))
            assert di.check_full_equivalence() == 0
        join = NodeJoin(node=len(pts), x=float(pts[0][0]), y=float(pts[0][1]))
        di.update_event(inc.apply(join))
        assert di.check_full_equivalence() == 0


class TestAcceptanceTrace:
    def test_1000_events_bit_identical_after_every_event(self):
        pts, d0, inc, di = _pair(60, 23)
        trace = random_event_trace(
            pts, 1000, move_sigma=d0 / 2.0, rng=np.random.default_rng(2023)
        )
        for ev in trace.events():
            stats = inc.apply(ev)
            di.update_event(stats)
            assert di.check_full_equivalence() == 0


class TestStalenessGuard:
    def test_out_of_sync_raises(self):
        pts, d0, inc, di = _pair(40, 5)
        inc.apply(NodeJoin(node=inc.size, x=0.5, y=0.5))
        with pytest.raises(RuntimeError, match="out of sync"):
            di.interference_sets()
        with pytest.raises(RuntimeError, match="out of sync"):
            di.degree_array()

    def test_update_resyncs(self):
        pts, d0, inc, di = _pair(40, 5)
        stats = inc.apply(NodeJoin(node=inc.size, x=0.5, y=0.5))
        di.update_event(stats)
        assert di.check_full_equivalence() == 0


class TestDynamicMAC:
    def test_bounds_match_static_mac(self):
        from repro.core.interference_mac import RandomActivationMAC

        pts, d0, inc, di = _pair(60, 11)
        mac = DynamicMAC(di, rng=0)
        mac._refresh()
        static = RandomActivationMAC(inc.snapshot_graph(), DELTA, rng=0)
        np.testing.assert_allclose(mac._probs, static.activation_probs)
        assert mac.interference_number == static.interference_number

    def test_active_edges_refresh_after_churn(self):
        pts, d0, inc, di = _pair(60, 12)
        mac = DynamicMAC(di, rng=1)
        edges, costs = mac.active_edges()
        assert edges.shape[1] == 2 and len(edges) == len(costs)
        trace = random_event_trace(pts, 10, move_sigma=d0 / 2.0, rng=3)
        for ev in trace.events():
            di.update_event(inc.apply(ev))
        edges, costs = mac.active_edges()  # re-derives from new version
        assert mac._cache_version == inc.topology_version
        # Every sampled edge is a current topology edge.
        edge_set = inc.edge_set()
        for a, b in edges.tolist():
            assert (min(a, b), max(a, b)) in edge_set

    def test_success_mask_resolves_on_live_positions(self):
        from repro.sim.packets import Transmission

        pts, d0, inc, di = _pair(60, 13)
        mac = DynamicMAC(di, rng=2)
        edges = inc.edge_array()
        tx = [
            Transmission(src=int(a), dst=int(b), dest=int(b), cost=1.0)
            for a, b in edges[:4].tolist()
        ]
        ok = mac.success_mask(tx)
        assert ok.shape == (len(tx),) and ok.dtype == bool


class TestCachedInterferenceSetsVersioning:
    class _StubGraph:
        """Minimal graph with a mutable topology_version (id stays fixed)."""

        def __init__(self, pts, edges):
            from repro.graphs.base import GeometricGraph

            self._g = GeometricGraph(pts, edges)
            self.topology_version = 0

        def __getattr__(self, name):
            return getattr(self._g, name)

    def test_version_bump_invalidates(self):
        cache_mod.clear_cache()
        pts = uniform_points(30, rng=0)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        g = self._StubGraph(inc.all_positions().copy(), inc.edge_array())
        s1 = cache_mod.cached_interference_sets(g, DELTA)
        s2 = cache_mod.cached_interference_sets(g, DELTA)
        assert s1 is s2  # same id + version → cache hit
        # Churn: same object identity, new version → fresh sets.
        inc.apply(NodeJoin(node=inc.size, x=0.5, y=0.5))
        g2 = self._StubGraph(inc.all_positions().copy(), inc.edge_array())
        g2.topology_version = 1
        s3 = cache_mod.cached_interference_sets(g2, DELTA)
        assert s3 == interference_sets(g2._g, DELTA)

    def test_snapshot_graph_carries_version_and_caches(self):
        cache_mod.clear_cache()
        pts = uniform_points(30, rng=1)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        g = inc.snapshot_graph()
        assert g.topology_version == inc.topology_version
        s1 = cache_mod.cached_interference_sets(g, DELTA)
        s2 = cache_mod.cached_interference_sets(inc.snapshot_graph(), DELTA)
        assert s1 is s2  # unchanged version → same snapshot → hit
        inc.apply(NodeJoin(node=inc.size, x=0.25, y=0.25))
        g3 = inc.snapshot_graph()
        assert g3.topology_version != g.topology_version
        s3 = cache_mod.cached_interference_sets(g3, DELTA)
        assert s3 == interference_sets(g3, DELTA)
        assert len(s3) != len(s1) or s3 != s1  # stale structure not served
