"""Tests for the ``python -m repro`` experiment runner."""

from __future__ import annotations

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["e99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_quick_e1(self, capsys):
        assert main(["e1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "max_degree" in out
        assert "completed in" in out

    def test_quick_e5(self, capsys):
        assert main(["e5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "lemma29_bound" in out

    def test_quick_e12(self, capsys):
        assert main(["e12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "threshold_T" in out

    def test_every_quick_thunk_runs(self):
        """Every experiment's quick variant returns at least one row."""
        for key, (_, _, quick) in EXPERIMENTS.items():
            rows = quick()
            assert rows, key
