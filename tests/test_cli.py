"""Tests for the ``python -m repro`` experiment runner and verify gate."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.harness.registry import REGISTRY


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["e99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_quick_e1(self, capsys):
        assert main(["e1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "max_degree" in out
        assert "completed in" in out

    def test_quick_e5(self, capsys):
        assert main(["e5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "lemma29_bound" in out

    def test_quick_e12(self, capsys):
        assert main(["e12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "threshold_T" in out

    def test_every_quick_thunk_runs(self):
        """Every experiment's quick variant returns at least one row."""
        for key, (_, _, quick) in EXPERIMENTS.items():
            rows = quick()
            assert rows, key


@pytest.fixture
def results_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


class TestVerify:
    def test_verify_quick_passes_and_writes_json(self, capsys, results_env):
        assert main(["verify", "--quick", "--only", "e1,e11"]) == 0
        out = capsys.readouterr().out
        assert "all 2 claims hold" in out
        for cid in ("e1", "e11"):
            rec = json.loads((results_env / f"{cid}.json").read_text())
            assert rec["claim"] == cid
            assert rec["passed"] is True
            assert rec["profile"] == "quick"
            assert rec["rows"], cid

    def test_only_filters_claims(self, capsys, results_env):
        assert main(["verify", "--quick", "--only", "e5"]) == 0
        capsys.readouterr()
        assert (results_env / "e5.json").exists()
        assert not (results_env / "e1.json").exists()

    def test_malformed_id_exits_2(self, capsys, results_env):
        assert main(["verify", "--quick", "--only", "e1,bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_failing_claim_exits_1(self, capsys, results_env, monkeypatch):
        broken = dataclasses.replace(
            REGISTRY["e1"], check=lambda rows, profile: ["deliberately broken"]
        )
        monkeypatch.setitem(REGISTRY, "e1", broken)
        assert main(["verify", "--quick", "--only", "e1"]) == 1
        err = capsys.readouterr().err
        assert "FAIL e1: deliberately broken" in err
        rec = json.loads((results_env / "e1.json").read_text())
        assert rec["passed"] is False
        assert rec["failures"] == ["deliberately broken"]

    def test_jobs_parallel_path(self, capsys, results_env):
        assert main(["verify", "--quick", "--jobs", "2", "--only", "e1,e5"]) == 0
        assert "all 2 claims hold" in capsys.readouterr().out
        assert (results_env / "e1.json").exists()
        assert (results_env / "e5.json").exists()
