"""Tests for the ``python -m repro`` experiment runner and verify gate."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.harness.registry import REGISTRY


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["e99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_quick_e1(self, capsys):
        assert main(["e1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "max_degree" in out
        assert "completed in" in out

    def test_quick_e5(self, capsys):
        assert main(["e5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "lemma29_bound" in out

    def test_quick_e12(self, capsys):
        assert main(["e12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "threshold_T" in out

    def test_every_quick_thunk_runs(self):
        """Every experiment's quick variant returns at least one row."""
        for key, (_, _, quick) in EXPERIMENTS.items():
            rows = quick()
            assert rows, key


@pytest.fixture
def results_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


class TestVerify:
    def test_verify_quick_passes_and_writes_json(self, capsys, results_env):
        assert main(["verify", "--quick", "--only", "e1,e11"]) == 0
        out = capsys.readouterr().out
        assert "all 2 claims hold" in out
        for cid in ("e1", "e11"):
            rec = json.loads((results_env / f"{cid}.json").read_text())
            assert rec["claim"] == cid
            assert rec["passed"] is True
            assert rec["profile"] == "quick"
            assert rec["rows"], cid

    def test_only_filters_claims(self, capsys, results_env):
        assert main(["verify", "--quick", "--only", "e5"]) == 0
        capsys.readouterr()
        assert (results_env / "e5.json").exists()
        assert not (results_env / "e1.json").exists()

    def test_malformed_id_exits_2(self, capsys, results_env):
        assert main(["verify", "--quick", "--only", "e1,bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        # The error names every valid claim id, not just "try 'list'".
        for cid in REGISTRY:
            assert cid in err

    def test_verify_list_prints_claim_table(self, capsys, results_env):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        for cid in REGISTRY:
            assert cid in out
        assert "Lemma 2.1" in out
        assert not any(results_env.iterdir())  # nothing ran, nothing written

    def test_failing_claim_exits_1(self, capsys, results_env, monkeypatch):
        broken = dataclasses.replace(
            REGISTRY["e1"], check=lambda rows, profile: ["deliberately broken"]
        )
        monkeypatch.setitem(REGISTRY, "e1", broken)
        assert main(["verify", "--quick", "--only", "e1"]) == 1
        err = capsys.readouterr().err
        assert "FAIL e1: deliberately broken" in err
        rec = json.loads((results_env / "e1.json").read_text())
        assert rec["passed"] is False
        assert rec["failures"] == ["deliberately broken"]

    def test_jobs_parallel_path(self, capsys, results_env):
        assert main(["verify", "--quick", "--jobs", "2", "--only", "e1,e5"]) == 0
        assert "all 2 claims hold" in capsys.readouterr().out
        assert (results_env / "e1.json").exists()
        assert (results_env / "e5.json").exists()


@pytest.fixture
def obs_off_after():
    yield
    from repro import obs

    obs.disable()


class TestTraceCapture:
    def test_experiment_trace_writes_artifacts(self, capsys, results_env, tmp_path, obs_off_after):
        tdir = tmp_path / "trace"
        assert main(["e6", "--quick", "--trace", str(tdir)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        for name in ("trace.jsonl", "trace.chrome.json", "series.json", "metrics.json"):
            assert (tdir / name).is_file(), name
        doc = json.loads((tdir / "trace.chrome.json").read_text())
        assert doc["traceEvents"], "chrome trace has no events"
        assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(doc["traceEvents"][0])

    def test_report_reconciles_series(self, capsys, results_env, tmp_path, obs_off_after):
        """Acceptance: per-step series in a traced e6 run sum exactly to
        the final RoutingStats of each simulation."""
        tdir = tmp_path / "trace"
        assert main(["e6", "--quick", "--trace", str(tdir)]) == 0
        capsys.readouterr()
        assert main(["report", str(tdir)]) == 0
        out = capsys.readouterr().out
        assert "phase-time breakdown" in out
        assert "per-step series summary" in out
        assert "reconciled" in out and "yes" in out
        # Reconcile programmatically too, run by run.
        from repro.obs.metrics import StepSeries

        runs = json.loads((tdir / "series.json").read_text())["runs"]
        assert runs
        for rec in runs:
            series = StepSeries.from_dict(rec)
            assert series.reconcile(rec["final_stats"]) == [], rec["name"]

    def test_verify_trace_section_in_results_json(self, capsys, results_env, tmp_path, obs_off_after):
        tdir = tmp_path / "trace"
        assert main(["verify", "--quick", "--only", "e6", "--trace", str(tdir)]) == 0
        capsys.readouterr()
        rec = json.loads((results_env / "e6.json").read_text())
        assert rec["trace"]["events"], "claim result carries no span events"
        assert rec["trace"]["series"], "claim result carries no step series"
        names = {e["name"] for e in rec["trace"]["events"]}
        assert "claim.e6" in names
        assert "engine.step" in names
        assert (tdir / "trace.chrome.json").is_file()

    def test_report_missing_dir_exits_2(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "no such trace directory" in capsys.readouterr().err

    def test_report_requires_path(self, capsys):
        assert main(["report"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_untraced_run_leaves_obs_disabled(self, capsys, results_env):
        from repro.obs import trace as obs_trace

        assert main(["verify", "--quick", "--only", "e5"]) == 0
        capsys.readouterr()
        assert obs_trace.active() is None


class TestProcessBackendTrace:
    def test_dynamic_process_trace_has_worker_events(
        self, capsys, tmp_path, obs_off_after
    ):
        """Satellite fix: a traced process-backend churn run must carry
        worker-side span events, not just the parent's."""
        import os

        tdir = tmp_path / "trace"
        assert main([
            "dynamic", "--n", "200", "--churn", "0.02", "--steps", "5",
            "--parallel", "--backend", "process", "--workers", "2",
            "--trace", str(tdir),
        ]) == 0
        out = capsys.readouterr().out
        assert "backend: process" in out
        events = [
            json.loads(line) for line in (tdir / "trace.jsonl").read_text().splitlines()
        ]
        pids = {e["pid"] for e in events}
        assert os.getpid() in pids
        assert len(pids) >= 3, f"no worker events in trace, pids={pids}"
        names = {e["name"] for e in events}
        assert "pool.apply_batch" in names
        assert "pool.batch" in names  # executed in the workers
        assert (tdir / "metrics.om").is_file()
        text = (tdir / "metrics.om").read_text()
        assert text.endswith("# EOF\n")
        assert 'name="pool.batches"' in text


class TestDynamicTiles:
    """``dynamic --tiles`` / ``--no-halo-filter`` on the process backend."""

    BASE = [
        "dynamic", "--n", "120", "--churn", "0.02", "--steps", "3",
        "--parallel", "--backend", "process", "--workers", "2",
    ]

    def test_pinned_tile_shape_runs_clean(self, capsys):
        assert main(self.BASE + ["--tiles", "3,3", "--mac"]) == 0
        out = capsys.readouterr().out
        assert "backend: process" in out
        assert "edge-for-edge equal" in out
        assert "row-for-row equal" in out
        assert "diffs replayed" in out

    def test_tile_count_and_no_halo_filter(self, capsys):
        assert main(self.BASE + ["--tiles", "6", "--no-halo-filter"]) == 0
        out = capsys.readouterr().out
        assert "backend: process" in out
        assert "suppressed: 0" in out  # broadcast mode never defers

    def test_malformed_tiles_exits_2(self, capsys):
        assert main(self.BASE + ["--tiles", "bogus"]) == 2
        assert "--tiles expects" in capsys.readouterr().err
        assert main(self.BASE + ["--tiles", "0,3"]) == 2
        assert main(self.BASE + ["--tiles", "1,2,3"]) == 2

    def test_parse_tiles_values(self):
        from repro.__main__ import _parse_tiles

        assert _parse_tiles(None) is None
        assert _parse_tiles("8") == 8
        assert _parse_tiles("4,2") == (4, 2)
        assert _parse_tiles(" 3 , 3 ") == (3, 3)
        with pytest.raises(ValueError):
            _parse_tiles("-1")


class TestTop:
    def _fake_store(self, tmp_path):
        from repro.obs import telemetry

        store = tmp_path / "store"
        store.mkdir()
        (store / "store.json").write_text(json.dumps({"name": "unit"}))
        telemetry.TelemetryWriter(store / "telemetry.jsonl", interval=0.0).write({
            "kind": "campaign",
            "ts": 1.0,
            "name": "unit",
            "cells": {"total": 4, "done": 3, "failed": 0, "remaining": 1},
            "workers": {"9": {"cells": 3, "cell_seconds": 0.4, "rss_bytes": 1e7}},
            "parent": {"pid": 8, "rss_bytes": 2e7, "cpu_user_s": 1.0, "cpu_sys_s": 0.1},
            "elapsed_s": 2.0,
            "rate_cells_per_s": 1.5,
        })
        return store

    def test_top_renders_store(self, capsys, tmp_path):
        store = self._fake_store(tmp_path)
        assert main(["top", str(store)]) == 0
        out = capsys.readouterr().out
        assert "campaign 'unit'" in out
        assert "3/4 done" in out
        assert "workers — 1 processes" in out

    def test_top_missing_store_exits_2(self, capsys, tmp_path):
        assert main(["top", str(tmp_path / "nope")]) == 2
        assert "store.json" in capsys.readouterr().err

    def test_top_store_without_telemetry(self, capsys, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "store.json").write_text(json.dumps({"name": "unit"}))
        assert main(["top", str(store)]) == 0
        assert "no telemetry.jsonl snapshots yet" in capsys.readouterr().out


class TestDynamicEventsIO:
    """``dynamic --events-out`` / ``--events-in`` record/replay round-trip."""

    def test_record_then_replay_round_trips(self, capsys, tmp_path):
        from repro.dynamic.events import event_trace_from_dict

        path = tmp_path / "trace.json"
        base = ["dynamic", "--n", "60", "--churn", "0.02", "--steps", "10", "--seed", "7"]
        assert main(base + ["--events-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"event trace written to {path}" in out
        recorded = event_trace_from_dict(json.loads(path.read_text()))
        assert len(recorded) == 12  # round(0.02 * 60 * 10)

        # Replaying against the same pointset (same --n/--seed) applies
        # the identical trace and still matches the from-scratch rebuild.
        assert main(base + ["--events-in", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"replaying {len(recorded)} events from {path}" in out
        assert "edge-for-edge equal" in out
        assert f"events={len(recorded)}" not in out  # table formats with spaces

    def test_replay_and_rerecord_is_identity(self, capsys, tmp_path):
        from repro.dynamic.events import event_trace_from_dict

        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        base = ["dynamic", "--n", "50", "--churn", "0.02", "--steps", "8", "--seed", "3"]
        assert main(base + ["--events-out", str(first)]) == 0
        assert main(base + ["--events-in", str(first), "--events-out", str(second)]) == 0
        capsys.readouterr()
        assert event_trace_from_dict(json.loads(first.read_text())) == event_trace_from_dict(
            json.loads(second.read_text())
        )

    def test_events_in_missing_file_exits_2(self, capsys, tmp_path):
        rc = main(["dynamic", "--n", "50", "--events-in", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot load events" in capsys.readouterr().err
