"""Tests for the ΘALG sector partition."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.sectors import SectorPartition, sector_index, sector_of

thetas = st.floats(0.02, math.pi / 3, exclude_min=True)
angles = st.floats(-50.0, 50.0, allow_nan=False)


class TestSectorPartition:
    def test_n_sectors_exact_division(self):
        part = SectorPartition(math.pi / 3)
        assert part.n_sectors == 6

    def test_n_sectors_rounds_up(self):
        # θ slightly under π/3 → 7 sectors of width < θ.
        part = SectorPartition(math.pi / 3 - 0.01)
        assert part.n_sectors == 7

    def test_width_at_most_theta(self):
        part = SectorPartition(0.5)
        assert part.width <= 0.5 + 1e-12

    def test_theta_bounds_enforced(self):
        with pytest.raises(ValueError):
            SectorPartition(0.0)
        with pytest.raises(ValueError):
            SectorPartition(math.pi / 2)

    def test_index_of_cardinal_angles(self):
        part = SectorPartition(math.pi / 3)  # 6 sectors of 60°
        assert part.index_of_angle(0.0) == 0
        assert part.index_of_angle(math.radians(59.9)) == 0
        assert part.index_of_angle(math.radians(60.1)) == 1
        assert part.index_of_angle(math.radians(359.9)) == 5

    @given(thetas, angles)
    def test_index_in_range(self, theta, angle):
        part = SectorPartition(theta)
        idx = part.index_of_angle(angle)
        assert 0 <= idx < part.n_sectors

    @given(thetas, angles)
    def test_index_periodic(self, theta, angle):
        """index(angle) == index(angle + 2π) except when the rounding of
        ``angle + 2π`` pushes the direction across a sector boundary —
        in that case the two indices must still be cyclically adjacent."""
        part = SectorPartition(theta)
        i0 = part.index_of_angle(angle)
        i1 = part.index_of_angle(angle + 2 * math.pi)
        diff = (i1 - i0) % part.n_sectors
        assert diff in (0, 1, part.n_sectors - 1)

    @given(thetas, angles, st.floats(0, 2 * math.pi))
    def test_offset_shifts_boundaries(self, theta, angle, offset):
        """An offset partition equals the unshifted partition of angle-offset."""
        p0 = SectorPartition(theta)
        p1 = SectorPartition(theta, offset)
        assert p1.index_of_angle(angle) == p0.index_of_angle(angle - offset)

    def test_vectorized_matches_scalar(self):
        part = SectorPartition(0.4)
        angs = np.linspace(0, 2 * math.pi, 100, endpoint=False)
        vec = part.index_of_angle(angs)
        scal = [part.index_of_angle(float(a)) for a in angs]
        assert np.array_equal(vec, scal)

    def test_bounds_cover_circle(self):
        part = SectorPartition(0.7)
        total = sum(part.width for _ in range(part.n_sectors))
        assert total == pytest.approx(2 * math.pi)

    def test_bounds_index_error(self):
        part = SectorPartition(0.7)
        with pytest.raises(IndexError):
            part.bounds(part.n_sectors)

    def test_indices_from_points(self):
        part = SectorPartition(math.pi / 3)
        pts = np.array([[1.0, 0.1], [0.0, 1.0], [-1.0, -0.1]])
        idx = part.indices_from(pts, np.zeros(2))
        assert idx[0] == 0
        assert idx[1] == 1


class TestSectorOf:
    def test_s_uv_asymmetric(self):
        """S(u, v) and S(v, u) differ by half a turn."""
        theta = math.pi / 3
        u, v = np.array([0.0, 0.0]), np.array([1.0, 0.3])
        s_uv = sector_of(theta, u, v)
        s_vu = sector_of(theta, v, u)
        assert s_uv != s_vu

    def test_coincident_points_raise(self):
        with pytest.raises(ValueError):
            sector_of(0.5, [1.0, 1.0], [1.0, 1.0])

    def test_sector_index_helper(self):
        assert sector_index(math.pi / 3, 0.1) == 0

    @given(thetas, st.floats(0, 2 * math.pi, exclude_max=True))
    def test_point_on_ray_matches_angle(self, theta, ang):
        u = np.zeros(2)
        v = np.array([math.cos(ang), math.sin(ang)])
        assert sector_of(theta, u, v) == SectorPartition(theta).index_of_angle(ang)
