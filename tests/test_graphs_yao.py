"""Tests for the Yao graph (phase 1 of ΘALG)."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry.pointsets import star_points, uniform_points
from repro.geometry.sectors import SectorPartition, sector_of
from repro.graphs.metrics import degrees, is_connected
from repro.graphs.transmission import max_range_for_connectivity
from repro.graphs.yao import yao_graph, yao_out_edges


class TestYaoOutEdges:
    def test_two_points(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        e = yao_out_edges(pts, math.pi / 6, 2.0)
        assert {tuple(x) for x in e} == {(0, 1), (1, 0)}

    def test_out_of_range_ignored(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0]])
        e = yao_out_edges(pts, math.pi / 6, 1.0)
        assert len(e) == 0

    def test_one_choice_per_sector(self):
        pts = uniform_points(50, rng=0)
        theta = math.pi / 6
        e = yao_out_edges(pts, theta, 2.0)
        part = SectorPartition(theta)
        seen: set[tuple[int, int]] = set()
        for u, v in e:
            s = sector_of(theta, pts[u], pts[v])
            assert (int(u), s) not in seen
            seen.add((int(u), s))
        del part

    def test_choice_is_nearest_in_sector(self):
        pts = uniform_points(40, rng=1)
        theta = math.pi / 6
        d = 2.0
        e = yao_out_edges(pts, theta, d)
        chosen = {(int(u), sector_of(theta, pts[u], pts[v])): int(v) for u, v in e}
        for u in range(len(pts)):
            for w in range(len(pts)):
                if u == w:
                    continue
                duw = float(np.hypot(*(pts[u] - pts[w])))
                if duw > d:
                    continue
                s = sector_of(theta, pts[u], pts[w])
                v = chosen[(u, s)]
                dv = float(np.hypot(*(pts[u] - pts[v])))
                assert dv <= duw + 1e-12

    def test_out_degree_bounded_by_sectors(self):
        pts = uniform_points(100, rng=2)
        theta = math.pi / 9
        e = yao_out_edges(pts, theta, 1.0)
        part = SectorPartition(theta)
        counts = np.bincount(e[:, 0], minlength=len(pts))
        assert counts.max() <= part.n_sectors

    def test_deterministic_tie_breaking(self):
        """Four symmetric points: repeated runs give identical edges."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0]])
        a = yao_out_edges(pts, math.pi / 4, 3.0)
        b = yao_out_edges(pts, math.pi / 4, 3.0)
        assert np.array_equal(a, b)


class TestYaoGraph:
    def test_connected_when_gstar_connected(self):
        pts = uniform_points(80, rng=5)
        d = max_range_for_connectivity(pts, slack=1.2)
        g = yao_graph(pts, math.pi / 6, d)
        assert is_connected(g)

    @given(st.integers(5, 60), st.integers(0, 8))
    @settings(max_examples=20, deadline=None)
    def test_property_connected(self, n, seed):
        pts = uniform_points(n, rng=seed)
        d = max_range_for_connectivity(pts, slack=1.0)
        g = yao_graph(pts, math.pi / 4, d)
        assert is_connected(g)

    def test_star_in_degree_linear(self):
        """The hub of the star configuration has Θ(n) Yao degree —
        the pathology ΘALG's phase 2 removes."""
        n = 60
        pts = star_points(n, rng=0)
        g = yao_graph(pts, math.pi / 6, 2.0)
        assert degrees(g)[0] >= n * 0.8

    def test_single_node(self):
        g = yao_graph(np.zeros((1, 2)), math.pi / 6, 1.0)
        assert g.n_edges == 0

    def test_spanner_on_uniform(self):
        """Yao graph distance-stretch is modest on random inputs."""
        from repro.graphs.metrics import distance_stretch
        from repro.graphs.transmission import transmission_graph

        pts = uniform_points(60, rng=7)
        d = max_range_for_connectivity(pts, slack=1.5)
        g = yao_graph(pts, math.pi / 6, d)
        ref = transmission_graph(pts, d)
        ds = distance_stretch(g, ref)
        assert ds.disconnected_pairs == 0
        assert ds.max_stretch < 4.0
