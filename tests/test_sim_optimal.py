"""Tests for the OPT bounds (time-expanded max-flow, witness summary)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.routing_experiments import ring_graph
from repro.graphs.base import GeometricGraph
from repro.sim.adversary import permutation_scenario, stream_scenario
from repro.sim.optimal import (
    min_energy_cost_matrix,
    time_expanded_max_throughput,
    witness_cost_summary,
)


def line_graph(n: int) -> GeometricGraph:
    pts = np.column_stack([np.arange(n, dtype=float), np.zeros(n)])
    return GeometricGraph(pts, [(i, i + 1) for i in range(n - 1)])


class TestTimeExpandedFlow:
    def test_single_packet_deliverable(self):
        g = line_graph(3)
        inj = {0: ((0, 2, 1),)}
        assert time_expanded_max_throughput(g, inj, duration=4) == 1

    def test_horizon_too_short(self):
        g = line_graph(4)
        inj = {0: ((0, 3, 1),)}
        # Needs 3 hops; packet routable from step 1 → arrival ≥ 4.
        assert time_expanded_max_throughput(g, inj, duration=3) == 0
        assert time_expanded_max_throughput(g, inj, duration=5) == 1

    def test_edge_capacity_limits_rate(self):
        """k packets over one edge need k transmission slots: with
        duration T the usable slots are t = 1 .. T-2."""
        g = line_graph(2)
        inj = {0: ((0, 1, 5),)}
        assert time_expanded_max_throughput(g, inj, duration=3) == 1
        assert time_expanded_max_throughput(g, inj, duration=4) == 2
        assert time_expanded_max_throughput(g, inj, duration=7) == 5

    def test_buffer_capacity_limits(self):
        """Zero intermediate buffering blocks store-and-forward... holdover
        capacity B bounds how many packets can wait at a node."""
        g = line_graph(3)
        inj = {0: ((0, 2, 4),)}
        unlimited = time_expanded_max_throughput(g, inj, duration=8)
        tight = time_expanded_max_throughput(g, inj, duration=8, buffer_size=1)
        assert unlimited == 4
        assert tight <= unlimited

    def test_upper_bounds_witness(self):
        """Max-flow ≥ the witness deliveries on the same horizon."""
        g = ring_graph(8)
        scen = permutation_scenario(g, 6, rng=0)
        horizon = scen.witness_makespan + 2
        ub = time_expanded_max_throughput(g, dict(scen.injection_map), horizon)
        assert ub >= scen.witness_delivered

    def test_no_injections(self):
        g = line_graph(3)
        assert time_expanded_max_throughput(g, {}, duration=5) == 0

    def test_zero_duration(self):
        g = line_graph(3)
        assert time_expanded_max_throughput(g, {0: ((0, 2, 1),)}, duration=0) == 0

    def test_custom_activation(self):
        """With no edges ever active, nothing is delivered."""
        g = line_graph(3)
        inj = {0: ((0, 2, 1),)}
        none_active = lambda t: (np.empty((0, 2), dtype=int), np.empty(0))
        assert (
            time_expanded_max_throughput(g, inj, duration=6, active_edges_fn=none_active)
            == 0
        )


class TestMinEnergy:
    def test_matrix_symmetric(self):
        g = ring_graph(6)
        m = min_energy_cost_matrix(g)
        assert np.allclose(m, m.T)
        assert np.all(np.diag(m) == 0)

    def test_line_costs_additive(self):
        g = line_graph(4)
        m = min_energy_cost_matrix(g)
        assert m[0, 3] == pytest.approx(3.0)  # three unit edges at κ=2


class TestWitnessSummary:
    def test_empty(self):
        s = witness_cost_summary([], ring_graph(5))
        assert s["delivered"] == 0.0
        assert s["buffer"] == 1.0

    def test_matches_scenario_properties(self):
        g = ring_graph(10)
        scen = stream_scenario(g, 2, 20, rng=0)
        s = witness_cost_summary(scen.witness_schedules, g)
        assert s["delivered"] == scen.witness_delivered
        assert s["buffer"] == scen.witness_buffer
        assert s["avg_path_length"] == pytest.approx(scen.witness_avg_path_length)
        assert s["avg_cost"] == pytest.approx(scen.witness_avg_cost)
        assert s["makespan"] == scen.witness_makespan
