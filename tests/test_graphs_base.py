"""Tests for the :class:`GeometricGraph` container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.base import GeometricGraph, canonical_edges


@pytest.fixture
def triangle() -> GeometricGraph:
    pts = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0]])
    return GeometricGraph(pts, [(0, 1), (1, 2), (2, 0)], kappa=2.0, name="tri")


class TestCanonicalEdges:
    def test_orientation_normalized(self):
        e = canonical_edges([(2, 1), (0, 1)], 3)
        assert e.tolist() == [[0, 1], [1, 2]]

    def test_duplicates_removed(self):
        e = canonical_edges([(0, 1), (1, 0), (0, 1)], 2)
        assert e.tolist() == [[0, 1]]

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            canonical_edges([(1, 1)], 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            canonical_edges([(0, 5)], 3)

    def test_empty(self):
        assert canonical_edges([], 3).shape == (0, 2)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            canonical_edges(np.zeros((2, 3), dtype=int), 5)


class TestBasics:
    def test_counts(self, triangle):
        assert triangle.n_nodes == 3
        assert triangle.n_edges == 3

    def test_repr_contains_name(self, triangle):
        assert "tri" in repr(triangle)

    def test_points_readonly(self, triangle):
        with pytest.raises(ValueError):
            triangle.points[0, 0] = 9.0

    def test_edges_readonly(self, triangle):
        with pytest.raises(ValueError):
            triangle.edges[0, 0] = 2

    def test_kappa_bounds(self):
        pts = np.zeros((2, 2))
        pts[1, 0] = 1
        with pytest.raises(ValueError):
            GeometricGraph(pts, [(0, 1)], kappa=1.5)
        with pytest.raises(ValueError):
            GeometricGraph(pts, [(0, 1)], kappa=5.0)


class TestLengthsAndCosts:
    def test_edge_lengths(self, triangle):
        # canonical order: (0,1), (0,2), (1,2)
        assert triangle.edge_lengths == pytest.approx([3.0, 4.0, 5.0])

    def test_edge_costs_kappa2(self, triangle):
        assert triangle.edge_costs == pytest.approx([9.0, 16.0, 25.0])

    def test_with_kappa(self, triangle):
        g3 = triangle.with_kappa(3.0)
        assert g3.edge_costs == pytest.approx([27.0, 64.0, 125.0])
        # Original untouched.
        assert triangle.kappa == 2.0

    def test_cost_lookup(self, triangle):
        assert triangle.cost(1, 0) == pytest.approx(9.0)
        assert triangle.length(2, 1) == pytest.approx(5.0)

    def test_cost_missing_edge(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        g = GeometricGraph(pts, [(0, 1)])
        with pytest.raises(KeyError):
            g.cost(0, 2)

    def test_total_cost(self, triangle):
        assert triangle.total_cost == pytest.approx(50.0)


class TestAdjacency:
    def test_has_edge_symmetric(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)

    def test_adjacency_symmetric(self, triangle):
        a = triangle.adjacency.toarray()
        assert np.allclose(a, a.T)
        assert a[0, 1] == pytest.approx(3.0)

    def test_cost_adjacency_weights(self, triangle):
        a = triangle.cost_adjacency.toarray()
        assert a[1, 2] == pytest.approx(25.0)

    def test_neighbors(self, triangle):
        assert triangle.neighbors(0).tolist() == [1, 2]

    def test_neighbors_isolated(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
        g = GeometricGraph(pts, [(0, 1)])
        assert g.neighbors(2).tolist() == []

    def test_directed_edge_array(self, triangle):
        d = triangle.directed_edge_array()
        assert len(d) == 6
        assert {(int(a), int(b)) for a, b in d} == {
            (0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1),
        }

    def test_empty_graph(self):
        g = GeometricGraph(np.zeros((0, 2)), [])
        assert g.n_nodes == 0
        assert g.directed_edge_array().shape == (0, 2)


class TestConversions:
    def test_to_networkx(self, triangle):
        g = triangle.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3
        assert g[0][1]["length"] == pytest.approx(3.0)
        assert g[1][2]["cost"] == pytest.approx(25.0)
        assert g.nodes[0]["pos"] == (0.0, 0.0)

    def test_subgraph_with_edges(self, triangle):
        sub = triangle.subgraph_with_edges([(0, 1)], name="sub")
        assert sub.n_edges == 1
        assert sub.n_nodes == 3
        assert sub.name == "sub"
        assert sub.kappa == triangle.kappa

    @given(
        st.integers(2, 15),
        st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_edge_id_roundtrip(self, n, raw_edges):
        pts = np.random.default_rng(0).random((n, 2)) * 10
        edges = [(a % n, b % n) for a, b in raw_edges if a % n != b % n]
        g = GeometricGraph(pts, edges)
        for k, (i, j) in enumerate(g.edges):
            assert g.edge_id(int(i), int(j)) == k
            assert g.edge_id(int(j), int(i)) == k
