"""Tests for the witnessed adversarial scenario generators."""

from __future__ import annotations

import pytest

from repro.analysis.routing_experiments import grid_graph, ring_graph
from repro.sim.adversary import (
    WitnessedScenario,
    flood_scenario,
    hotspot_scenario,
    hotspot_stream_scenario,
    permutation_scenario,
    random_scenario_on_graph,
    stream_scenario,
)
from repro.sim.schedules import schedules_conflict_free, validate_schedule


@pytest.fixture(scope="module")
def ring():
    return ring_graph(12)


class TestScenarioInvariants:
    """Shared invariants every generator must satisfy."""

    @pytest.fixture(
        params=["permutation", "hotspot", "flood", "stream", "hotspot_stream", "random"]
    )
    def scenario(self, request, ring) -> WitnessedScenario:
        make = {
            "permutation": lambda: permutation_scenario(ring, 20, rng=0),
            "hotspot": lambda: hotspot_scenario(ring, 20, rng=1),
            "flood": lambda: flood_scenario(ring, 10, 2.0, rng=2),
            "stream": lambda: stream_scenario(ring, 2, 30, rng=3),
            "hotspot_stream": lambda: hotspot_stream_scenario(ring, 2, 30, rng=4),
            "random": lambda: random_scenario_on_graph(ring, rate=0.5, duration=30, rng=5),
        }
        return make[request.param]()

    def test_witness_schedules_valid(self, scenario):
        for s in scenario.witness_schedules:
            validate_schedule(s)

    def test_witness_conflict_free(self, scenario):
        assert schedules_conflict_free(scenario.witness_schedules)

    def test_witness_hops_are_graph_edges(self, scenario):
        for s in scenario.witness_schedules:
            for (u, v), _ in s.hops:
                assert scenario.graph.has_edge(int(u), int(v))

    def test_witnessed_packets_subset_of_injections(self, scenario):
        """Every witnessed delivery corresponds to an injected packet."""
        offered: dict[tuple[int, int, int], int] = {}
        for t, offers in scenario.injection_map.items():
            for (node, dest, count) in offers:
                key = (t, node, dest)
                offered[key] = offered.get(key, 0) + count
        used: dict[tuple[int, int, int], int] = {}
        for s in scenario.witness_schedules:
            key = (s.inject_time, s.source, s.dest)
            used[key] = used.get(key, 0) + 1
        for key, cnt in used.items():
            assert offered.get(key, 0) >= cnt

    def test_active_edges_cover_witness(self, scenario):
        for s in scenario.witness_schedules:
            for (u, v), t in s.hops:
                edges, _ = scenario.active_edges(t)
                assert [u, v] in edges.tolist()

    def test_witness_facts_positive(self, scenario):
        assert scenario.witness_delivered > 0
        assert scenario.witness_buffer >= 1
        assert scenario.witness_avg_path_length >= 1.0
        assert scenario.witness_avg_cost > 0

    def test_destinations_well_formed(self, scenario):
        n = scenario.graph.n_nodes
        for d in scenario.destinations:
            assert 0 <= d < n


class TestStreamScenario:
    def test_disjoint_paths_small_buffer(self, ring):
        scen = stream_scenario(ring, 3, 50, rng=0, disjoint=True)
        assert scen.witness_buffer <= 2

    def test_nondisjoint_allowed(self, ring):
        scen = stream_scenario(ring, 4, 20, rng=0, disjoint=False)
        assert scen.witness_delivered > 0

    def test_explicit_pairs(self, ring):
        scen = stream_scenario(ring, 0, 10, pairs=[(0, 3)])
        srcs = {s.source for s in scen.witness_schedules}
        assert srcs == {0}

    def test_injection_rate(self, ring):
        scen = stream_scenario(ring, 2, 25, rng=1)
        counts = [sum(c for _, _, c in scen.injections(t)) for t in range(25)]
        assert all(c == 2 for c in counts)

    def test_bad_duration(self, ring):
        with pytest.raises(ValueError):
            stream_scenario(ring, 2, 0, rng=0)


class TestFloodScenario:
    def test_flood_exceeds_witness(self, ring):
        scen = flood_scenario(ring, 10, 3.0, rng=0)
        assert scen.total_injected > scen.witness_delivered


class TestHotspotScenarios:
    def test_single_destination(self, ring):
        scen = hotspot_scenario(ring, 15, dest=4, rng=0)
        assert all(s.dest == 4 for s in scen.witness_schedules)
        assert scen.destinations == [4]

    def test_hotspot_stream_horizon_trim(self, ring):
        scen = hotspot_stream_scenario(ring, 3, 20, dest=0, rng=0)
        assert all(s.finish_time <= 60 for s in scen.witness_schedules)


class TestActivateAll:
    def test_restricted_activation(self, ring):
        scen = permutation_scenario(ring, 10, rng=3, activate_all=False)
        # Only witness edges are active; step 0 has no moves (t0=0 < t1).
        edges, costs = scen.active_edges(0)
        assert len(edges) == len(costs)
        used_at_1 = {
            (u, v) for s in scen.witness_schedules for (u, v), t in s.hops if t == 1
        }
        e1, _ = scen.active_edges(1)
        assert {tuple(e) for e in e1} == used_at_1

    def test_full_activation_all_directed_edges(self, ring):
        scen = permutation_scenario(ring, 10, rng=3, activate_all=True)
        edges, costs = scen.active_edges(0)
        assert len(edges) == 2 * ring.n_edges


class TestGraphHelpers:
    def test_ring_structure(self):
        g = ring_graph(8)
        assert g.n_edges == 8
        from repro.graphs.metrics import degrees

        assert (degrees(g) == 2).all()

    def test_grid_structure(self):
        g = grid_graph(4)
        assert g.n_nodes == 16
        assert g.n_edges == 2 * 4 * 3
