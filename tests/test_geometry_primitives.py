"""Tests for :mod:`repro.geometry.primitives`."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.primitives import (
    angle_between,
    angles_from,
    as_points,
    distances_from,
    normalize_angle,
    pairwise_distances,
    pairwise_sq_distances,
    polygon_area,
)

finite_coord = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
point_arrays = arrays(np.float64, st.tuples(st.integers(1, 12), st.just(2)), elements=finite_coord)


class TestAsPoints:
    def test_accepts_list(self):
        pts = as_points([[0, 0], [1, 1]])
        assert pts.shape == (2, 2)
        assert pts.dtype == np.float64

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            as_points(np.zeros((3, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            as_points([[0.0, float("nan")]])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            as_points(np.zeros(4))


class TestPairwiseDistances:
    def test_known_triangle(self):
        pts = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0]])
        d = pairwise_distances(pts)
        assert d[0, 1] == pytest.approx(3.0)
        assert d[0, 2] == pytest.approx(4.0)
        assert d[1, 2] == pytest.approx(5.0)

    def test_diagonal_zero(self):
        pts = np.random.default_rng(0).random((10, 2))
        d = pairwise_distances(pts)
        assert np.all(np.diag(d) == 0.0)

    @given(point_arrays)
    def test_symmetry_and_nonnegative(self, pts):
        d = pairwise_distances(pts)
        assert np.allclose(d, d.T)
        assert (d >= 0).all()

    @given(point_arrays)
    def test_matches_scipy_convention(self, pts):
        from scipy.spatial.distance import cdist

        d = pairwise_distances(pts)
        ref = cdist(pts, pts)
        assert np.allclose(d, ref, atol=1e-8)

    def test_sq_distances_consistent(self):
        pts = np.random.default_rng(1).random((8, 2))
        assert np.allclose(pairwise_sq_distances(pts), pairwise_distances(pts) ** 2)


class TestDistancesAngles:
    def test_distances_from_origin(self):
        pts = np.array([[1.0, 0.0], [0.0, 2.0]])
        d = distances_from(pts, [0.0, 0.0])
        assert d == pytest.approx([1.0, 2.0])

    def test_angles_from_cardinal_directions(self):
        o = [0.0, 0.0]
        pts = np.array([[1, 0], [0, 1], [-1, 0], [0, -1]], dtype=float)
        a = angles_from(pts, o)
        assert a == pytest.approx([0.0, math.pi / 2, math.pi, 3 * math.pi / 2])

    @given(st.floats(-20, 20))
    def test_normalize_angle_range(self, x):
        a = normalize_angle(x)
        assert 0 <= a < 2 * math.pi + 1e-12

    def test_angle_between_right_angle(self):
        assert angle_between([1, 0], [0, 0], [0, 1]) == pytest.approx(math.pi / 2)

    def test_angle_between_collinear(self):
        assert angle_between([1, 0], [0, 0], [2, 0]) == pytest.approx(0.0)
        assert angle_between([1, 0], [0, 0], [-1, 0]) == pytest.approx(math.pi)

    def test_angle_between_degenerate_raises(self):
        with pytest.raises(ValueError):
            angle_between([0, 0], [0, 0], [1, 1])

    @given(
        st.tuples(finite_coord, finite_coord),
        st.tuples(finite_coord, finite_coord),
        st.tuples(finite_coord, finite_coord),
    )
    def test_angle_between_symmetric(self, a, o, b):
        a, o, b = np.array(a), np.array(o), np.array(b)
        if np.allclose(a, o) or np.allclose(b, o):
            return
        assert angle_between(a, o, b) == pytest.approx(angle_between(b, o, a))


class TestPolygonArea:
    def test_unit_square_ccw(self):
        sq = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert polygon_area(sq) == pytest.approx(1.0)

    def test_cw_is_negative(self):
        sq = np.array([[0, 0], [0, 1], [1, 1], [1, 0]], dtype=float)
        assert polygon_area(sq) == pytest.approx(-1.0)

    def test_triangle(self):
        tri = np.array([[0, 0], [2, 0], [0, 2]], dtype=float)
        assert polygon_area(tri) == pytest.approx(2.0)
