"""Tests for the honeycomb algorithm (§3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.honeycomb import HoneycombConfig, HoneycombRouter


def cluster_points() -> np.ndarray:
    """Two far-apart unit-disk-connected pairs (distinct hexagons)."""
    return np.array(
        [
            [0.0, 0.0],
            [0.8, 0.0],
            [30.0, 0.0],
            [30.8, 0.0],
        ]
    )


class TestConfig:
    def test_p_transmit_bound(self):
        with pytest.raises(ValueError):
            HoneycombConfig(p_transmit=0.2)
        with pytest.raises(ValueError):
            HoneycombConfig(p_transmit=0.0)
        HoneycombConfig(p_transmit=1.0 / 6.0)  # boundary OK

    def test_negative_delta(self):
        with pytest.raises(ValueError):
            HoneycombConfig(delta=-0.5)


class TestPairs:
    def test_unit_disk_pairs_only(self):
        pts = np.array([[0.0, 0.0], [0.9, 0.0], [2.5, 0.0]])
        r = HoneycombRouter(pts, None, HoneycombConfig())
        und = {(min(a, b), max(a, b)) for a, b in r.directed_pairs}
        assert und == {(0, 1)}

    def test_both_orientations(self):
        r = HoneycombRouter(cluster_points(), None, HoneycombConfig())
        pairs = {tuple(p) for p in r.directed_pairs}
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_no_pairs(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        r = HoneycombRouter(pts, None, HoneycombConfig())
        assert len(r.directed_pairs) == 0
        assert r.step([]) == 0  # no-op step is fine


class TestBenefitsAndContestants:
    def test_benefit_is_height_differential(self):
        r = HoneycombRouter(cluster_points(), None, HoneycombConfig(threshold=1.0))
        r.router.inject(0, 1, 5)
        ben = r.benefits()
        k = next(i for i, p in enumerate(r.directed_pairs) if tuple(p) == (0, 1))
        assert ben[k] == 5.0

    def test_one_contestant_per_hexagon(self):
        r = HoneycombRouter(cluster_points(), None, HoneycombConfig(threshold=1.0))
        r.router.inject(0, 1, 5)
        r.router.inject(1, 0, 3)
        r.router.inject(2, 3, 4)
        chosen = r.select_contestants()
        cells = [tuple(r.hexgrid.cell_of(r.points[r.directed_pairs[k][0]])) for k in chosen]
        assert len(cells) == len(set(cells))

    def test_contestant_needs_benefit_above_threshold(self):
        r = HoneycombRouter(cluster_points(), None, HoneycombConfig(threshold=10.0))
        r.router.inject(0, 1, 5)
        assert len(r.select_contestants()) == 0

    def test_max_benefit_wins(self):
        r = HoneycombRouter(cluster_points(), None, HoneycombConfig(threshold=1.0))
        r.router.inject(0, 1, 3)
        r.router.inject(1, 0, 8)
        chosen = r.select_contestants()
        picked = {tuple(r.directed_pairs[k]) for k in chosen}
        assert (1, 0) in picked


class TestIndependence:
    def test_far_pairs_independent(self):
        r = HoneycombRouter(cluster_points(), None, HoneycombConfig(delta=0.5))
        mask = r.independent_success_mask(np.array([[0, 1], [2, 3]]))
        assert mask.all()

    def test_close_pairs_conflict(self):
        pts = np.array([[0.0, 0.0], [0.8, 0.0], [1.5, 0.0], [2.3, 0.0]])
        r = HoneycombRouter(pts, None, HoneycombConfig(delta=0.5))
        mask = r.independent_success_mask(np.array([[0, 1], [2, 3]]))
        assert not mask.any()

    def test_guard_distance_is_absolute(self):
        """Two pairs separated by just over 1+Δ are independent."""
        d = 0.5
        sep = 1.0 + d + 0.05
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [0.5 + sep, 0.0], [1.0 + sep, 0.0]])
        r = HoneycombRouter(pts, None, HoneycombConfig(delta=d))
        mask = r.independent_success_mask(np.array([[0, 1], [2, 3]]))
        assert mask.all()


class TestEndToEnd:
    def test_single_hop_delivery(self):
        r = HoneycombRouter(cluster_points(), None, HoneycombConfig(threshold=1.0), rng=0)
        delivered = 0
        r.router.inject(0, 1, 10)
        for _ in range(400):
            delivered += r.step([])
        # service rate ≈ 1/6 per step; plenty of steps → all but ≤ T stuck.
        assert delivered >= 8

    def test_two_hexagons_progress_in_parallel(self):
        r = HoneycombRouter(cluster_points(), None, HoneycombConfig(threshold=1.0), rng=1)
        r.router.inject(0, 1, 10)
        r.router.inject(2, 3, 10)
        for _ in range(500):
            r.step([])
        assert r.router.stats.delivered >= 14

    def test_injections_through_step(self):
        r = HoneycombRouter(cluster_points(), None, HoneycombConfig(threshold=1.0), rng=2)
        r.step([(0, 1, 3)])
        assert r.stats.injected == 3
        assert r.router.height(0, 1) == 3

    def test_stats_exposed(self):
        r = HoneycombRouter(cluster_points(), None, HoneycombConfig())
        assert r.stats is r.router.stats
