"""Cross-cutting property tests on the paper's core invariants."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.core.theta import theta_algorithm
from repro.geometry.pointsets import uniform_points
from repro.graphs.metrics import is_connected, max_degree
from repro.graphs.transmission import max_range_for_connectivity, transmission_graph


class TestBalancingPotential:
    """With threshold T ≥ 1 and no injections, every packet move
    strictly decreases the quadratic potential Σ h², so the potential
    is non-increasing step over step — the Lyapunov argument behind the
    balancing analyses."""

    @given(
        st.integers(4, 8),
        st.lists(st.tuples(st.integers(0, 7), st.integers(1, 7)), min_size=1, max_size=25),
        st.integers(1, 4),
        st.integers(5, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_potential_non_increasing_without_injections(self, n, raw_inj, T, steps):
        router = BalancingRouter(
            n, list(range(n)), BalancingConfig(float(T), 0.0, 64)
        )
        ring = np.array([[i, (i + 1) % n] for i in range(n)])
        edges = np.vstack([ring, ring[:, ::-1]])
        costs = np.ones(len(edges)) * 0.01
        for node, off in raw_inj:
            node %= n
            dest = (node + off) % n
            if dest != node:
                router.inject(node, dest, 1)
        prev = float((router.heights.astype(np.float64) ** 2).sum())
        for _ in range(steps):
            router.run_step(edges, costs)
            cur = float((router.heights.astype(np.float64) ** 2).sum())
            assert cur <= prev + 1e-9
            prev = cur

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_drained_network_is_quiescent(self, seed):
        """After enough injection-free steps the router reaches a fixed
        point: no further transmissions are decided."""
        gen = np.random.default_rng(seed)
        n = 6
        router = BalancingRouter(n, list(range(n)), BalancingConfig(1.0, 0.0, 32))
        ring = np.array([[i, (i + 1) % n] for i in range(n)])
        edges = np.vstack([ring, ring[:, ::-1]])
        costs = np.ones(len(edges)) * 0.01
        for _ in range(10):
            s, d = gen.choice(n, size=2, replace=False)
            router.inject(int(s), int(d), 1)
        for _ in range(200):
            router.run_step(edges, costs)
        assert router.decide(edges, costs) == []


class TestThetaMonotonicity:
    """Structural monotonicity of ΘALG in its parameters."""

    @given(st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_smaller_theta_never_disconnects(self, seed):
        pts = uniform_points(40, rng=seed)
        d = max_range_for_connectivity(pts, slack=1.3)
        for theta in (math.pi / 3, math.pi / 6, math.pi / 12):
            topo = theta_algorithm(pts, theta, d)
            assert is_connected(topo.graph)

    @given(st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_larger_range_means_no_fewer_yao_choices(self, seed):
        """Growing D can only add candidate neighbors, so the phase-1
        out-choice count per node is non-decreasing in D."""
        from repro.graphs.yao import yao_out_edges

        pts = uniform_points(30, rng=seed)
        d = max_range_for_connectivity(pts, slack=1.0)
        small = yao_out_edges(pts, math.pi / 6, d)
        large = yao_out_edges(pts, math.pi / 6, d * 1.5)
        count_small = np.bincount(small[:, 0], minlength=30)
        count_large = np.bincount(large[:, 0], minlength=30)
        assert (count_large >= count_small).all()

    @given(st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_degree_bound_scales_with_sector_count(self, seed):
        pts = uniform_points(50, rng=seed)
        d = max_range_for_connectivity(pts, slack=1.3)
        for theta in (math.pi / 3, math.pi / 4, math.pi / 6):
            topo = theta_algorithm(pts, theta, d)
            assert max_degree(topo.graph) <= 2 * topo.partition.n_sectors


class TestStretchOrdering:
    """N₁ (Yao) ⊆ relationships and stretch dominance."""

    @given(st.integers(0, 12))
    @settings(max_examples=10, deadline=None)
    def test_n_subset_of_yao_implies_stretch_dominance(self, seed):
        """N ⊆ N₁ ⇒ N's shortest paths are no shorter than N₁'s."""
        from repro.graphs.metrics import shortest_path_costs

        pts = uniform_points(35, rng=seed)
        d = max_range_for_connectivity(pts, slack=1.3)
        topo = theta_algorithm(pts, math.pi / 6, d)
        d_n = shortest_path_costs(topo.graph, weight="cost")
        d_yao = shortest_path_costs(topo.yao_graph, weight="cost")
        assert (d_n >= d_yao - 1e-9).all()

    @given(st.integers(0, 12))
    @settings(max_examples=10, deadline=None)
    def test_gstar_lower_bounds_everything(self, seed):
        from repro.graphs.metrics import shortest_path_costs

        pts = uniform_points(35, rng=seed)
        d = max_range_for_connectivity(pts, slack=1.3)
        gstar = transmission_graph(pts, d)
        topo = theta_algorithm(pts, math.pi / 6, d)
        d_ref = shortest_path_costs(gstar, weight="cost")
        d_n = shortest_path_costs(topo.graph, weight="cost")
        assert (d_n >= d_ref - 1e-9).all()
