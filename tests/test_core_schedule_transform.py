"""Tests for the constructive Theorem 2.8 scheduler."""

from __future__ import annotations

import math

import pytest

import repro
from repro.core.schedule_transform import (
    transform_schedules,
    verify_interference_free,
)
from repro.sim.adversary import permutation_scenario, stream_scenario
from repro.sim.schedules import Schedule, schedules_conflict_free, validate_schedule


@pytest.fixture(scope="module")
def world():
    pts = repro.uniform_points(50, rng=31)
    d = repro.max_range_for_connectivity(pts, slack=1.5)
    gstar = repro.transmission_graph(pts, d)
    topo = repro.theta_algorithm(pts, math.pi / 9, d)
    return pts, d, gstar, topo


def gstar_schedules(gstar, n_packets, rng):
    """Witnessed schedules on G* (the input of Theorem 2.8)."""
    scen = permutation_scenario(gstar, n_packets, rng=rng)
    return scen.witness_schedules


class TestTransform:
    def test_outputs_valid_n_schedules(self, world):
        _, _, gstar, topo = world
        ins = gstar_schedules(gstar, 15, rng=0)
        outs = transform_schedules(topo, ins, delta=0.5)
        assert len(outs) == len(ins)
        for s in outs:
            validate_schedule(s)
            for (u, v), _t in s.hops:
                assert topo.graph.has_edge(int(u), int(v))

    def test_same_endpoints(self, world):
        _, _, gstar, topo = world
        ins = gstar_schedules(gstar, 15, rng=1)
        outs = transform_schedules(topo, ins, delta=0.5)
        for a, b in zip(ins, outs):
            assert a.source == b.source
            assert a.dest == b.dest
            assert a.inject_time == b.inject_time

    def test_conflict_free(self, world):
        _, _, gstar, topo = world
        outs = transform_schedules(topo, gstar_schedules(gstar, 20, rng=2), delta=0.5)
        assert schedules_conflict_free(outs)

    def test_interference_free(self, world):
        _, _, gstar, topo = world
        outs = transform_schedules(topo, gstar_schedules(gstar, 20, rng=3), delta=0.5)
        verify_interference_free(topo, outs, 0.5)

    def test_makespan_within_theorem_envelope(self, world):
        """Makespan inflation ≤ O(I) (Theorem 2.8's bound)."""
        from repro.interference.conflict import interference_number

        _, _, gstar, topo = world
        ins = gstar_schedules(gstar, 20, rng=4)
        outs = transform_schedules(topo, ins, delta=0.5)
        t_in = max(s.finish_time for s in ins)
        t_out = max(s.finish_time for s in outs)
        big_i = interference_number(topo.graph, 0.5)
        n = topo.graph.n_nodes
        assert t_out <= 16 * (t_in + 1) * (big_i + 1) + 4 * n * n

    def test_edge_already_in_n_passes_through(self, world):
        """A single-hop schedule on an N edge keeps one hop."""
        _, _, _, topo = world
        u, v = (int(x) for x in topo.graph.edges[0])
        s = Schedule(inject_time=0, hops=(((u, v), 1),))
        (out,) = transform_schedules(topo, [s], delta=0.5)
        assert out.n_hops == 1

    def test_horizon_guard(self, world):
        _, _, gstar, topo = world
        ins = gstar_schedules(gstar, 10, rng=5)
        with pytest.raises(RuntimeError, match="horizon"):
            transform_schedules(topo, ins, delta=0.5, max_time=1)

    def test_stream_schedules_also_transform(self, world):
        """Pipelined stream witnesses (many packets, shared paths)."""
        _, _, gstar, topo = world
        scen = stream_scenario(gstar, 2, 20, rng=6)
        outs = transform_schedules(topo, scen.witness_schedules, delta=0.5)
        assert schedules_conflict_free(outs)
        verify_interference_free(topo, outs, 0.5)


class TestVerifier:
    def test_detects_planted_interference(self, world):
        """The verifier is not a rubber stamp: two adjacent same-step
        transmissions must trip it."""
        _, _, _, topo = world
        g = topo.graph
        # Find two adjacent (interfering) edges.
        found = None
        for k in range(g.n_edges):
            u, v = (int(x) for x in g.edges[k])
            for m in range(k + 1, g.n_edges):
                a, b = (int(x) for x in g.edges[m])
                if len({u, v} & {a, b}) == 1:
                    found = ((u, v), (a, b))
                    break
            if found:
                break
        assert found is not None
        e1, e2 = found
        s1 = Schedule(0, ((e1, 1),))
        s2 = Schedule(0, ((e2, 1),))
        with pytest.raises(AssertionError, match="interference"):
            verify_interference_free(topo, [s1, s2], 0.5)
