"""Tests for the node-distribution generators."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.pointsets import (
    DISTRIBUTIONS,
    civilized_points,
    clustered_points,
    critical_range,
    grid_points,
    line_points,
    min_pairwise_distance,
    perturbed_grid_points,
    poisson_disk_points,
    precision_lambda,
    ring_points,
    star_points,
    two_cluster_bridge_points,
    uniform_points,
)


class TestBasicGenerators:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_registry_shapes(self, name):
        pts = DISTRIBUTIONS[name](40, rng=0)
        assert pts.shape == (40, 2)
        assert np.isfinite(pts).all()

    def test_uniform_in_square(self):
        pts = uniform_points(200, side=2.0, rng=0)
        assert (pts >= 0).all() and (pts <= 2.0).all()

    def test_uniform_deterministic(self):
        assert np.array_equal(uniform_points(10, rng=3), uniform_points(10, rng=3))

    def test_uniform_rejects_bad_n(self):
        with pytest.raises(ValueError):
            uniform_points(0)

    def test_grid_exact_count(self):
        pts = grid_points(10)
        assert pts.shape == (10, 2)

    def test_grid_perfect_square(self):
        pts = grid_points(9, side=1.0)
        # 3x3 lattice covering corners
        assert [0.0, 0.0] in pts.tolist()
        assert [1.0, 1.0] in pts.tolist()

    def test_perturbed_grid_unique_distances(self):
        pts = perturbed_grid_points(25, rng=0)
        d = min_pairwise_distance(pts)
        assert d > 0

    def test_perturbed_grid_jitter_bounds(self):
        with pytest.raises(ValueError):
            perturbed_grid_points(9, jitter=0.6)

    def test_clustered_clipped(self):
        pts = clustered_points(300, rng=1)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_clustered_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            clustered_points(10, n_clusters=0)

    def test_ring_radius(self):
        pts = ring_points(50, radius=0.4, center=(0.5, 0.5))
        r = np.hypot(pts[:, 0] - 0.5, pts[:, 1] - 0.5)
        assert np.allclose(r, 0.4)

    def test_line_monotone_x(self):
        pts = line_points(20)
        assert np.all(np.diff(pts[:, 0]) > 0)
        assert np.all(pts[:, 1] == 0)


class TestPoissonDisk:
    def test_min_distance_respected(self):
        pts = poisson_disk_points(50, min_dist=0.08, rng=0)
        assert min_pairwise_distance(pts) >= 0.08 - 1e-12

    def test_exact_count(self):
        pts = poisson_disk_points(30, min_dist=0.05, rng=1)
        assert len(pts) == 30

    def test_infeasible_raises(self):
        with pytest.raises(RuntimeError):
            poisson_disk_points(1000, min_dist=0.2, side=1.0, rng=0, max_tries=5)

    @given(st.integers(2, 40), st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_property_separation(self, n, seed):
        md = 0.5 / math.sqrt(n)
        pts = poisson_disk_points(n, min_dist=md, rng=seed)
        assert min_pairwise_distance(pts) >= md - 1e-12


class TestCivilized:
    def test_lambda_precision_holds(self):
        pts = civilized_points(60, lam=0.5, rng=0)
        d = 0.875 / math.sqrt(60)  # the generator's default max_range
        assert precision_lambda(pts, d) >= 0.5 - 1e-9

    def test_lambda_out_of_range(self):
        with pytest.raises(ValueError):
            civilized_points(10, lam=0.0)
        with pytest.raises(ValueError):
            civilized_points(10, lam=1.5)

    def test_explicit_max_range(self):
        pts = civilized_points(30, lam=0.4, max_range=0.2, rng=2)
        assert min_pairwise_distance(pts) >= 0.4 * 0.2 - 1e-12


class TestAdversarialShapes:
    def test_star_has_hub_at_origin(self):
        pts = star_points(20)
        assert np.allclose(pts[0], 0)

    def test_star_arc_points_near_radius(self):
        pts = star_points(20, radius=1.0)
        r = np.hypot(pts[1:, 0], pts[1:, 1])
        assert (r >= 1.0 - 1e-9).all() and (r <= 1.1).all()

    def test_star_unique_distances(self):
        pts = star_points(30, rng=0)
        assert min_pairwise_distance(pts) > 0

    def test_two_cluster_gap(self):
        pts = two_cluster_bridge_points(40, gap=0.8, spread=0.02, rng=0)
        xs = np.sort(pts[:, 0])
        # A clear empty band between the clusters.
        gaps = np.diff(xs)
        assert gaps.max() > 0.5


class TestHelpers:
    def test_min_pairwise_single_point(self):
        assert min_pairwise_distance(np.zeros((1, 2))) == math.inf

    def test_min_pairwise_known(self):
        pts = np.array([[0.0, 0.0], [0.0, 3.0], [4.0, 0.0]])
        assert min_pairwise_distance(pts) == pytest.approx(3.0)

    def test_critical_range_decreases_with_n(self):
        assert critical_range(1000) < critical_range(50)

    def test_critical_range_single_node(self):
        assert critical_range(1) == 1.0
