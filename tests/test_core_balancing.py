"""Tests for the (T, γ)-balancing router."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.sim.packets import Transmission


def two_node_router(T=0.0, gamma=0.0, H=100) -> BalancingRouter:
    return BalancingRouter(2, [1], BalancingConfig(threshold=T, gamma=gamma, max_height=H))


def line_router(n=4, T=0.0, gamma=0.0, H=100, dests=None) -> BalancingRouter:
    return BalancingRouter(
        n, dests if dests is not None else [n - 1],
        BalancingConfig(threshold=T, gamma=gamma, max_height=H),
    )


EDGE_01 = np.array([[0, 1]])
COST_1 = np.array([1.0])


class TestConfig:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            BalancingConfig(threshold=-1.0, gamma=0.0, max_height=10)

    def test_zero_height_rejected(self):
        with pytest.raises(ValueError):
            BalancingConfig(threshold=0.0, gamma=0.0, max_height=0)

    def test_bad_destination(self):
        with pytest.raises(ValueError):
            BalancingRouter(3, [5], BalancingConfig(1.0, 0.0, 10))

    def test_empty_destinations_rejected(self):
        with pytest.raises(ValueError):
            BalancingRouter(3, [], BalancingConfig(1.0, 0.0, 10))


class TestInjection:
    def test_accepts_up_to_height(self):
        r = two_node_router(H=5)
        assert r.inject(0, 1, 3) == 3
        assert r.height(0, 1) == 3

    def test_drops_beyond_height(self):
        r = two_node_router(H=5)
        assert r.inject(0, 1, 8) == 5
        assert r.stats.dropped == 3
        assert r.stats.injected == 8

    def test_inject_at_destination_rejected(self):
        r = two_node_router()
        with pytest.raises(ValueError):
            r.inject(1, 1, 1)

    def test_unknown_destination(self):
        r = two_node_router()  # destinations = [1]
        with pytest.raises(KeyError):
            r.inject(1, 0, 1)


class TestDecide:
    def test_moves_down_gradient(self):
        r = two_node_router(T=0.0)
        r.inject(0, 1, 2)
        txs = r.decide(EDGE_01, COST_1)
        assert len(txs) == 1
        assert (txs[0].src, txs[0].dst, txs[0].dest) == (0, 1, 1)

    def test_threshold_blocks(self):
        r = two_node_router(T=5.0)
        r.inject(0, 1, 3)  # gradient 3 ≤ T
        assert r.decide(EDGE_01, COST_1) == []

    def test_gamma_prices_cost(self):
        r = two_node_router(T=0.0, gamma=10.0)
        r.inject(0, 1, 3)  # gradient 3; γ·c = 10 > 3 → blocked
        assert r.decide(EDGE_01, COST_1) == []
        # Cheap edge passes.
        assert len(r.decide(EDGE_01, np.array([0.1]))) == 1

    def test_no_send_from_empty_buffer(self):
        r = two_node_router()
        assert r.decide(EDGE_01, COST_1) == []

    def test_both_directions_evaluated(self):
        r = BalancingRouter(2, [0, 1], BalancingConfig(0.0, 0.0, 100))
        r.inject(0, 1, 2)
        r.inject(1, 0, 2)
        both = np.array([[0, 1], [1, 0]])
        txs = r.decide(both, np.array([1.0, 1.0]))
        assert len(txs) == 2
        assert {(t.src, t.dst) for t in txs} == {(0, 1), (1, 0)}

    def test_contention_capped_by_availability(self):
        """Two edges draining one buffer with one packet: single send."""
        r = BalancingRouter(3, [2], BalancingConfig(0.0, 0.0, 100))
        r.inject(0, 2, 1)
        edges = np.array([[0, 1], [0, 2]])
        txs = r.decide(edges, np.array([1.0, 1.0]))
        assert len(txs) == 1

    def test_picks_max_gradient_destination(self):
        r = BalancingRouter(2, [0, 1], BalancingConfig(0.0, 0.0, 100))
        # Buffers at node 0: dest-1 height 5.
        r.inject(0, 1, 5)
        txs = r.decide(EDGE_01, COST_1)
        assert txs[0].dest == 1

    def test_decide_does_not_mutate_heights(self):
        r = two_node_router()
        r.inject(0, 1, 2)
        before = r.heights.copy()
        r.decide(EDGE_01, COST_1)
        assert np.array_equal(before, r.heights)

    def test_length_mismatch_rejected(self):
        r = two_node_router()
        with pytest.raises(ValueError):
            r.decide(EDGE_01, np.array([1.0, 2.0]))


class TestApply:
    def test_delivery_absorbs(self):
        r = two_node_router()
        r.inject(0, 1, 1)
        txs = r.decide(EDGE_01, COST_1)
        delivered = r.apply(txs)
        assert delivered == 1
        assert r.total_packets() == 0
        assert r.stats.delivered == 1

    def test_relay_moves_packet(self):
        r = line_router(3, dests=[2])
        r.inject(0, 2, 1)
        txs = r.decide(np.array([[0, 1]]), COST_1)
        assert r.apply(txs) == 0
        assert r.height(1, 2) == 1
        assert r.height(0, 2) == 0

    def test_failed_transmission_keeps_packet(self):
        r = two_node_router()
        r.inject(0, 1, 1)
        txs = r.decide(EDGE_01, COST_1)
        delivered = r.apply(txs, np.array([False]))
        assert delivered == 0
        assert r.height(0, 1) == 1
        assert r.stats.interference_failures == 1
        assert r.stats.energy_attempted == pytest.approx(1.0)
        assert r.stats.energy_successful == 0.0

    def test_apply_mask_length_mismatch(self):
        r = two_node_router()
        r.inject(0, 1, 1)
        txs = r.decide(EDGE_01, COST_1)
        with pytest.raises(ValueError):
            r.apply(txs, np.array([True, False]))

    def test_sending_from_empty_buffer_raises(self):
        r = two_node_router()
        fake = [Transmission(src=0, dst=1, dest=1, cost=1.0)]
        with pytest.raises(RuntimeError):
            r.apply(fake)


class TestConservation:
    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(1, 3)), min_size=1, max_size=30),
        st.integers(1, 25),
    )
    @settings(max_examples=40, deadline=None)
    def test_packets_conserved(self, injections, steps):
        """accepted == delivered + still-buffered, for any run."""
        n = 5
        r = BalancingRouter(n, list(range(n)), BalancingConfig(0.0, 0.0, 8))
        ring = np.array([[i, (i + 1) % n] for i in range(n)])
        ring = np.vstack([ring, ring[:, ::-1]])
        costs = np.ones(len(ring))
        for node, doff in injections:
            dest = (node + doff) % n
            if dest != node:
                r.inject(node, dest, 1)
        for _ in range(steps):
            r.run_step(ring, costs)
        assert r.stats.accepted == r.stats.delivered + r.total_packets()

    def test_heights_never_negative(self):
        r = line_router(4, dests=[3])
        edges = np.array([[0, 1], [1, 2], [2, 3], [1, 0], [2, 1], [3, 2]])
        costs = np.ones(len(edges))
        r.inject(0, 3, 5)
        for _ in range(20):
            r.run_step(edges, costs)
            assert (r.heights >= 0).all()


class TestRunStep:
    def test_full_pipeline_delivers_line(self):
        r = line_router(4, dests=[3], H=50)
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        costs = np.ones(3) * 0.1
        for _ in range(10):
            r.run_step(edges, costs, injections=[(0, 3, 1)])
        for _ in range(40):
            r.run_step(edges, costs)
        assert r.stats.delivered >= 8  # a couple stuck below gradient

    def test_success_fn_applied(self):
        r = two_node_router()
        r.inject(0, 1, 2)
        delivered = r.run_step(EDGE_01, COST_1, success_fn=lambda txs: [False] * len(txs))
        assert delivered == 0
        assert r.height(0, 1) == 2

    def test_stats_steps_counted(self):
        r = two_node_router()
        for _ in range(5):
            r.run_step(EDGE_01, COST_1)
        assert r.stats.steps == 5
