"""Event vocabulary, churn generators, and trace serialization."""

import numpy as np
import pytest

from repro import (
    EventTrace,
    FailStop,
    NodeJoin,
    NodeLeave,
    NodeMove,
    RandomWaypointMobility,
    Recover,
    failstop_trace,
    load_event_trace,
    merge_traces,
    mobility_trace,
    poisson_churn_trace,
    random_event_trace,
    save_event_trace,
    uniform_points,
)
from repro.dynamic.events import (
    event_kind,
    event_trace_from_dict,
    event_trace_to_dict,
)


class TestEventTrace:
    def test_sorted_by_time_stable(self):
        tr = EventTrace(
            [(2, NodeLeave(0)), (0, NodeJoin(5, 0.1, 0.2)), (2, FailStop(1))]
        )
        assert [t for t, _ in tr] == [0, 2, 2]
        # Same-step events keep their construction order.
        assert tr.at(2) == [NodeLeave(0), FailStop(1)]
        assert tr.at(1) == []
        assert tr.horizon == 3
        assert len(tr) == 3

    def test_events_and_counts(self):
        tr = EventTrace([(0, NodeMove(1, 0.5, 0.5)), (1, Recover(2)), (2, NodeMove(1, 0.6, 0.5))])
        assert tr.events() == [NodeMove(1, 0.5, 0.5), Recover(2), NodeMove(1, 0.6, 0.5)]
        assert tr.counts() == {"move": 2, "recover": 1}

    def test_rejects_negative_time_and_bad_horizon(self):
        with pytest.raises(ValueError):
            EventTrace([(-1, NodeLeave(0))])
        with pytest.raises(ValueError):
            EventTrace([(5, NodeLeave(0))], horizon=3)

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            EventTrace([(0, "leave")])
        with pytest.raises(TypeError):
            event_kind(object())


class TestSerialization:
    def _mixed(self):
        return EventTrace(
            [
                (0, NodeJoin(3, 0.25, 0.75)),
                (1, NodeMove(0, 0.5, 0.125)),
                (1, FailStop(1)),
                (4, Recover(1)),
                (5, NodeLeave(2)),
            ],
            horizon=10,
        )

    def test_dict_round_trip(self):
        tr = self._mixed()
        data = event_trace_to_dict(tr)
        assert data["format_version"] == 1
        assert data["horizon"] == 10
        assert event_trace_from_dict(data) == tr

    def test_file_round_trip(self, tmp_path):
        tr = self._mixed()
        path = tmp_path / "trace.json"
        save_event_trace(tr, path)
        assert load_event_trace(path) == tr

    def test_positions_survive_exactly(self, tmp_path):
        # Bit-exact floats through JSON (repr round-trip).
        x, y = 0.1 + 0.2, 1.0 / 3.0
        tr = EventTrace([(0, NodeJoin(0, x, y))])
        path = tmp_path / "t.json"
        save_event_trace(tr, path)
        ev = load_event_trace(path).events()[0]
        assert (ev.x, ev.y) == (x, y)

    def test_rejects_unknown_version_and_kind(self):
        data = event_trace_to_dict(self._mixed())
        with pytest.raises(ValueError):
            event_trace_from_dict({**data, "format_version": 99})
        bad = {**data, "events": [{"t": 0, "kind": "teleport", "node": 0}]}
        with pytest.raises(ValueError):
            event_trace_from_dict(bad)

    def test_generator_round_trip(self, tmp_path):
        tr = random_event_trace(uniform_points(20, rng=0), 60, rng=1)
        path = tmp_path / "gen.json"
        save_event_trace(tr, path)
        assert load_event_trace(path) == tr


class TestGenerators:
    def test_poisson_deterministic_and_min_alive(self):
        a = poisson_churn_trace(10, 50, arrival_rate=0.5, departure_rate=1.5, min_alive=4, rng=7)
        b = poisson_churn_trace(10, 50, arrival_rate=0.5, departure_rate=1.5, min_alive=4, rng=7)
        assert a == b
        assert set(a.counts()) <= {"join", "leave"}
        alive = set(range(10))
        for _, ev in a:
            if isinstance(ev, NodeJoin):
                assert ev.node not in alive
                alive.add(ev.node)
            else:
                assert ev.node in alive
                alive.discard(ev.node)
                assert len(alive) >= 4

    def test_failstop_pairs_and_ordering(self):
        tr = failstop_trace(12, 80, fail_rate=0.4, mean_downtime=5.0, rng=3)
        assert set(tr.counts()) <= {"fail", "recover"}
        down = set()
        for _, ev in tr:
            if isinstance(ev, FailStop):
                assert ev.node not in down
                down.add(ev.node)
            else:
                assert ev.node in down
                down.discard(ev.node)
        # Recoveries never outnumber failures.
        counts = tr.counts()
        assert counts.get("recover", 0) <= counts.get("fail", 0)

    def test_mobility_trace_only_moves(self):
        pts = uniform_points(8, rng=2)
        mob = RandomWaypointMobility(pts, speed=0.05, rng=4)
        tr = mobility_trace(mob, 10)
        assert set(tr.counts()) <= {"move"}
        assert all(isinstance(ev, NodeMove) for ev in tr.events())
        assert len(tr) > 0
        assert tr.horizon == 10

    def test_mobility_trace_every_batches(self):
        pts = uniform_points(6, rng=5)
        mob = RandomWaypointMobility(pts, speed=0.05, rng=6)
        tr = mobility_trace(mob, 10, every=5)
        assert {t for t, _ in tr} <= {4, 9}

    def test_random_event_trace_valid_by_construction(self):
        pts = uniform_points(15, rng=8)
        tr = random_event_trace(pts, 200, min_alive=3, rng=9)
        assert len(tr) == 200
        alive = set(range(15))
        failed = set()
        for _, ev in tr:
            if isinstance(ev, NodeJoin):
                assert ev.node not in alive and ev.node not in failed
                assert 0.0 <= ev.x <= 1.0 and 0.0 <= ev.y <= 1.0
                alive.add(ev.node)
            elif isinstance(ev, NodeMove):
                assert ev.node in alive
                assert 0.0 <= ev.x <= 1.0 and 0.0 <= ev.y <= 1.0
            elif isinstance(ev, NodeLeave):
                assert ev.node in alive
                alive.discard(ev.node)
            elif isinstance(ev, FailStop):
                assert ev.node in alive
                alive.discard(ev.node)
                failed.add(ev.node)
            else:
                assert isinstance(ev, Recover)
                assert ev.node in failed
                failed.discard(ev.node)
                alive.add(ev.node)
            assert len(alive) >= 3

    def test_random_event_trace_weights(self):
        pts = uniform_points(10, rng=0)
        only_moves = {"move": 1.0, "join": 0.0, "leave": 0.0, "fail": 0.0, "recover": 0.0}
        tr = random_event_trace(pts, 50, weights=only_moves, rng=1)
        assert tr.counts() == {"move": 50}
        with pytest.raises(ValueError):
            random_event_trace(pts, 5, weights={"teleport": 1.0}, rng=1)

    def test_merge_traces_stable_interleave(self):
        churn = EventTrace([(0, NodeLeave(1)), (2, NodeLeave(2))])
        moves = EventTrace([(0, NodeMove(0, 0.3, 0.3))], horizon=5)
        merged = merge_traces(churn, moves)
        assert merged.horizon == 5
        # Same-step: first-trace events come first.
        assert merged.at(0) == [NodeLeave(1), NodeMove(0, 0.3, 0.3)]
        assert len(merged) == 3


class TestMobilityReadOnly:
    def test_views_are_read_only(self):
        pts = uniform_points(10, rng=11)
        mob = RandomWaypointMobility(pts, speed=0.05, rng=12)
        view = mob.advance()
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0] = 99.0
        with pytest.raises(ValueError):
            mob.positions(0)[0, 0] = 99.0
        # The model itself keeps advancing fine despite the frozen views.
        nxt = mob.advance()
        assert nxt.shape == (10, 2)
        assert np.isfinite(nxt).all()
