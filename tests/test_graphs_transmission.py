"""Tests for the transmission graph G*."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.pointsets import uniform_points
from repro.graphs.metrics import is_connected
from repro.graphs.transmission import max_range_for_connectivity, transmission_graph


class TestTransmissionGraph:
    def test_known_edges(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        g = transmission_graph(pts, 1.5)
        assert g.edges.tolist() == [[0, 1]]

    def test_range_inclusive(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        g = transmission_graph(pts, 1.0)
        assert g.n_edges == 1

    def test_matches_bruteforce(self):
        pts = uniform_points(80, rng=0)
        d = 0.3
        g = transmission_graph(pts, d)
        want = set()
        for i in range(80):
            for j in range(i + 1, 80):
                if np.hypot(*(pts[i] - pts[j])) <= d + 1e-12:
                    want.add((i, j))
        assert {tuple(e) for e in g.edges} == want

    def test_kappa_propagated(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        g = transmission_graph(pts, 2.0, kappa=3.0)
        assert g.kappa == 3.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            transmission_graph(np.zeros((1, 2)), 0.0)

    @given(st.integers(2, 50), st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_complete_at_max_distance(self, n, seed):
        pts = uniform_points(n, rng=seed)
        g = transmission_graph(pts, np.sqrt(2.0) + 1e-9)
        assert g.n_edges == n * (n - 1) // 2


class TestMaxRangeForConnectivity:
    def test_connects_exactly(self):
        pts = uniform_points(50, rng=3)
        d = max_range_for_connectivity(pts)
        assert is_connected(transmission_graph(pts, d))

    def test_slightly_below_disconnects(self):
        pts = uniform_points(50, rng=3)
        d = max_range_for_connectivity(pts)
        assert not is_connected(transmission_graph(pts, d * 0.999))

    def test_slack_scales(self):
        pts = uniform_points(20, rng=1)
        assert max_range_for_connectivity(pts, slack=2.0) == pytest.approx(
            2.0 * max_range_for_connectivity(pts)
        )

    def test_trivial_inputs(self):
        assert max_range_for_connectivity(np.zeros((1, 2))) == 0.0

    def test_two_points(self):
        pts = np.array([[0.0, 0.0], [0.0, 2.5]])
        assert max_range_for_connectivity(pts) == pytest.approx(2.5)


class TestSparseBottleneck:
    """The KD-tree doubling-radius path must agree with the dense oracle."""

    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_dense(self, seed):
        n = 30 + 17 * seed
        pts = uniform_points(n, rng=seed)
        dense = max_range_for_connectivity(pts, method="dense")
        sparse = max_range_for_connectivity(pts, method="sparse")
        assert sparse == pytest.approx(dense, rel=1e-12)

    def test_two_far_clusters(self):
        """The bottleneck (the long bridge) forces many radius doublings."""
        rng = np.random.default_rng(0)
        a = rng.random((40, 2))
        b = rng.random((40, 2)) + [50.0, 0.0]
        pts = np.vstack([a, b])
        dense = max_range_for_connectivity(pts, method="dense")
        sparse = max_range_for_connectivity(pts, method="sparse")
        assert sparse == pytest.approx(dense, rel=1e-12)
        assert sparse > 45.0

    def test_collinear(self):
        pts = np.column_stack([np.cumsum(np.arange(1.0, 9.0)), np.zeros(8)])
        dense = max_range_for_connectivity(pts, method="dense")
        sparse = max_range_for_connectivity(pts, method="sparse")
        assert sparse == dense == pytest.approx(8.0)

    def test_coincident_points(self):
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [3.0, 0.0]])
        assert max_range_for_connectivity(pts, method="sparse") == pytest.approx(
            max_range_for_connectivity(pts, method="dense")
        )

    def test_all_coincident(self):
        pts = np.zeros((5, 2))
        assert max_range_for_connectivity(pts, method="sparse") == 0.0

    def test_bad_method(self):
        with pytest.raises(ValueError):
            max_range_for_connectivity(np.zeros((3, 2)), method="fastest")

    def test_slack_applies_to_sparse(self):
        pts = uniform_points(40, rng=2)
        assert max_range_for_connectivity(pts, slack=2.0, method="sparse") == pytest.approx(
            2.0 * max_range_for_connectivity(pts, method="sparse")
        )
