"""k×k tiled scaling layer: corner halos, subscriptions, pooled MAC.

PR-10 surface, asserted bit-identical to the serial kernels:

* :class:`TileGrid` pinned ``shape=(nx, ny)`` covers, corner-halo masks
  and diagonal neighbor enumeration;
* k×k :class:`TiledEngine` construction (3×3 and 4×2 grids, uniform /
  clustered / degenerate collinear layouts, workers cycling 1/2/4/8)
  equals ``theta_algorithm`` / ``interference_sets`` edge for edge —
  including float32 shared-arena runs against a quantized serial twin;
* :class:`TileWorkerPool` halo-subscription filtering: a 1000-event
  churn trace reaches identical state per batch with filtering on and
  off, ships no more diffs filtered than broadcast, and demonstrably
  suppresses deliveries between far-apart regions;
* pool-side MAC steps merge to the exact serial
  :meth:`DynamicMAC.deterministic_step` result at every worker count,
  on the order-independent :func:`edge_uniforms` hash.
"""

import math

import numpy as np
import pytest

from repro import (
    DynamicInterference,
    IncrementalTheta,
    NodeMove,
    clustered_points,
    interference_sets,
    max_range_for_connectivity,
    random_event_trace,
    theta_algorithm,
    uniform_points,
)
from repro.dynamic import DynamicMAC, edge_uniforms
from repro.parallel import TiledEngine, TileGrid, TileWorkerPool

THETA = math.pi / 9
DELTA = 0.5
SEEDS = list(range(20))
#: Worker count per seed — cycles the 1/2/4/8 matrix through the suite.
WORKERS = {s: (1, 2, 4, 8)[s % 4] for s in SEEDS}
#: Pinned grid shape per seed — alternates the 3×3 and 4×2 cases.
SHAPES = {s: ((3, 3), (4, 2))[s % 2] for s in SEEDS}


def _layout(n, seed):
    """Uniform / degenerate clustered / degenerate collinear by seed."""
    kind = seed % 3
    if kind == 1:
        return clustered_points(n, n_clusters=3, spread=0.02, rng=seed)
    if kind == 2:
        # Collinear: zero y-extent collapses the grid's y axis to 1.
        rng = np.random.default_rng(seed)
        return np.column_stack([np.sort(rng.random(n)), np.full(n, 0.25)])
    return uniform_points(n, rng=seed)


def _capacity(inc, events):
    return max([inc.size] + [int(ev.node) + 1 for ev in events]) + 8


class TestGridShapes:
    def test_cover_pins_shape_exactly(self):
        g = TileGrid.cover((0.0, 0.0, 30.0, 30.0), shape=(3, 3))
        assert g.shape == (3, 3) and g.n_tiles == 9
        assert g.tile_w == pytest.approx(10.0) and g.tile_h == pytest.approx(10.0)
        g = TileGrid.cover((0.0, 0.0, 40.0, 10.0), shape=(4, 2))
        assert g.shape == (4, 2) and g.n_tiles == 8

    def test_degenerate_extent_collapses_axis(self):
        g = TileGrid.cover((0.0, 0.5, 1.0, 0.5), shape=(3, 3))
        assert g.shape == (3, 1)
        g = TileGrid.cover((0.2, 0.0, 0.2, 2.0), shape=(4, 2))
        assert g.shape == (1, 2)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            TileGrid.cover((0.0, 0.0, 1.0, 1.0), shape=(0, 3))

    def test_neighbors_include_diagonals(self):
        g = TileGrid.cover((0.0, 0.0, 30.0, 30.0), shape=(3, 3))
        center = 1 * 3 + 1  # (tx, ty) = (1, 1), column-major
        assert g.neighbors(center) == (0, 1, 2, 3, 5, 6, 7, 8)
        assert g.neighbors(center, diagonal=False) == (1, 3, 5, 7)
        assert g.neighbors(0) == (1, 3, 4)  # corner tile: 2 axis + 1 diagonal
        assert g.neighbors(0, diagonal=False) == (1, 3)

    def test_corner_mask_isolates_diagonal_halo(self):
        g = TileGrid.cover((0.0, 0.0, 30.0, 30.0), shape=(3, 3))
        center = 4  # owns [10, 20] × [10, 20]
        pts = np.array(
            [
                [9.0, 9.0],  # within halo 2, outside both axes → corner
                [9.0, 15.0],  # axis halo (west band) — not a corner
                [15.0, 21.0],  # axis halo (north band) — not a corner
                [7.0, 7.0],  # diagonal but beyond halo 2
                [15.0, 15.0],  # interior
                [21.5, 21.5],  # within halo 2, outside both axes → corner
            ]
        )
        corner = g.corner_mask(pts, center, 2.0)
        assert corner.tolist() == [True, False, False, False, False, True]
        # corners are a subset of the halo rectangle
        assert not (corner & ~g.halo_mask(pts, center, 2.0)).any()
        # border tiles own their overhang: ±inf sides never make corners
        assert not g.corner_mask(np.array([[-5.0, -5.0]]), 0, 2.0).any()

    def test_ownership_partitions_any_shape(self):
        pts = uniform_points(200, rng=0) * 7.0 - 1.0
        for shape in [(3, 3), (4, 2), (1, 1), (5, 1)]:
            g = TileGrid.cover((0.0, 0.0, 5.0, 5.0), shape=shape)
            owners = g.tile_of_many(pts)
            assert ((owners >= 0) & (owners < g.n_tiles)).all()
            # halo 0 masks per tile tile exactly reproduce ownership
            owned = sum(int(g.halo_mask(pts, t, 0.0).sum()) for t in range(g.n_tiles))
            assert owned >= len(pts)  # shared tile boundaries may double-count


class TestKxKConstruction:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_theta_and_conflict_match_serial(self, seed):
        pts = _layout(130, seed)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        shape = SHAPES[seed]
        topo = theta_algorithm(pts, THETA, d0)
        with TiledEngine(workers=WORKERS[seed], tiles=shape) as eng:
            tiled = eng.theta(pts, THETA, d0, delta=DELTA)
            sets_t, cstats = eng.interference_sets(topo.graph, DELTA)
        assert tiled.edge_set() == topo.edge_set()
        sets_s = interference_sets(topo.graph, DELTA)
        assert np.array_equal(sets_t.indptr, sets_s.indptr)
        assert np.array_equal(sets_t.indices, sets_s.indices)
        # collinear layouts collapse the y axis; everything else pins k×k
        expect = (shape[0], 1) if seed % 3 == 2 else shape
        assert tiled.stats.shape == expect
        assert cstats.shape == expect
        if seed % 3 != 2:
            # a true 2-D grid has interior corners: the diagonal-neighbor
            # halo exchange must be visible in the accounting
            assert tiled.stats.corner_halo_items > 0

    def test_corner_clusters_cross_diagonal_tiles(self):
        # Mass piled on the four interior tile-corner junctions of a 3×3
        # grid — the worst case for corner halos: admissions at each
        # junction need state from all three neighbors incl. diagonal.
        rng = np.random.default_rng(77)
        centers = np.array([[1, 1], [1, 2], [2, 1], [2, 2]]) / 3.0
        pts = np.vstack(
            [c + rng.normal(scale=0.012, size=(30, 2)) for c in centers]
            + [rng.random((20, 2))]
        )
        d0 = max_range_for_connectivity(pts, slack=1.5)
        topo = theta_algorithm(pts, THETA, d0)
        with TiledEngine(workers=2, tiles=(3, 3)) as eng:
            tiled = eng.theta(pts, THETA, d0)
            sets_t, cstats = eng.interference_sets(topo.graph, DELTA)
        assert tiled.edge_set() == topo.edge_set()
        assert np.array_equal(sets_t.indices, interference_sets(topo.graph, DELTA).indices)
        assert tiled.stats.corner_halo_items > 0
        assert cstats.corner_halo_items > 0

    def test_adaptive_shape_scales_with_workers(self):
        pts = uniform_points(120, rng=4)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        topo = theta_algorithm(pts, THETA, d0)
        with TiledEngine(workers=2) as eng:  # no tiles= → adaptive
            tiled = eng.theta(pts, THETA, d0)
            assert tiled.edge_set() == topo.edge_set()
            nx, ny = tiled.stats.shape
            assert nx * ny == tiled.stats.n_tiles >= 1

    def test_float32_arena_matches_quantized_serial(self):
        pts = uniform_points(140, rng=8)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        # the float32 cast is the only lossy step: the serial reference
        # must be quantized through the same dtype
        quantized = pts.astype(np.float32).astype(np.float64)
        topo = theta_algorithm(quantized, THETA, d0)
        with TiledEngine(workers=2, tiles=(3, 3)) as eng:
            tiled = eng.theta(pts, THETA, d0, share_dtype=np.float32)
        assert tiled.edge_set() == topo.edge_set()


class TestHaloSubscriptions:
    def _twins(self, pts, d0):
        inc = IncrementalTheta(pts, THETA, d0)
        return inc, DynamicInterference(inc, DELTA)

    def test_thousand_event_filter_on_off(self):
        pts = uniform_points(200, rng=11)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        trace = random_event_trace(
            pts, 1000, move_sigma=d0 / 2.0, rng=np.random.default_rng(4321)
        )
        events = list(trace.events())
        inc_f, di_f = self._twins(pts, d0)
        inc_b, di_b = self._twins(pts, d0)
        inc_s, di_s = self._twins(pts, d0)
        cap = _capacity(inc_f, events)
        with TileWorkerPool(
            inc_f, di_f, workers=2, capacity=cap, halo_filter=True
        ) as filt, TileWorkerPool(
            inc_b, di_b, workers=2, capacity=cap, halo_filter=False
        ) as bcast:
            for lo in range(0, len(events), 25):
                batch = events[lo : lo + 25]
                sf = filt.apply_batch(batch)
                sb = bcast.apply_batch(batch)
                for ev in batch:
                    di_s.update_event(inc_s.apply(ev))
                # identical state with filtering on, off, and serially
                assert inc_f.edge_set() == inc_s.edge_set() == inc_b.edge_set()
                rows_s = di_s.interference_sets()
                assert di_f.interference_sets() == rows_s
                assert di_b.interference_sets() == rows_s
                assert sb.diffs_suppressed == 0  # broadcast never defers
            assert not inc_f.check_full_equivalence()
            assert di_f.check_full_equivalence() == 0
            # each (diff, worker) delivery happens at most once filtered,
            # exactly once broadcast — cumulative traffic can only shrink
            assert filt.diffs_replayed_total <= bcast.diffs_replayed_total
            assert (
                filt.diffs_replayed_total + filt.diffs_suppressed_total
                <= bcast.diffs_replayed_total + len(filt._backlog[0]) + len(filt._backlog[1])
            )

    def test_distant_clusters_suppress_deliveries(self):
        # Two dense clusters ≫ (9+3Δ)D apart on a 2×1 grid: each worker
        # owns one cluster, so the other cluster's churn must be withheld.
        rng = np.random.default_rng(5)
        d0 = 15.0
        a = rng.normal(scale=4.0, size=(50, 2)) + [0.0, 0.0]
        b = rng.normal(scale=4.0, size=(50, 2)) + [2000.0, 0.0]
        pts = np.vstack([a, b])
        inc, di = self._twins(pts, d0)
        inc_s, di_s = self._twins(pts, d0)
        events = []
        for step in range(4):
            ids = rng.choice(len(pts), size=10, replace=False)
            batch = []
            for i in ids:
                base = [0.0, 0.0] if i < 50 else [2000.0, 0.0]
                p = rng.normal(scale=4.0, size=2) + base
                batch.append(NodeMove(node=int(i), x=float(p[0]), y=float(p[1])))
            events.append(batch)
        with TileWorkerPool(
            inc, di, workers=2, capacity=len(pts) + 8, tiles=(2, 1)
        ) as pool:
            assert pool.grid.shape == (2, 1)
            for step, batch in enumerate(events):
                pool.apply_batch(batch)
                for ev in batch:
                    di_s.update_event(inc_s.apply(ev))
                assert inc.edge_set() == inc_s.edge_set()
                assert di.interference_sets() == di_s.interference_sets()
                # the pooled MAC stays exact while deliveries are withheld
                mac = pool.mac_step(seed=31, step=step)
                ref = DynamicMAC(di_s, bound_mode="own").deterministic_step(
                    seed=31, step=step
                )
                assert np.array_equal(mac.edges, ref.edges)
                assert np.array_equal(mac.ok, ref.ok)
            assert pool.diffs_suppressed_total > 0
            assert not inc.check_full_equivalence()
            assert di.check_full_equivalence() == 0

    def test_backlog_flush_path_stays_exact(self):
        # max_backlog=0: every withheld diff is flushed on the next
        # drain — the cap changes traffic, never state.
        pts = uniform_points(150, rng=13)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        trace = random_event_trace(
            pts, 120, move_sigma=d0 / 2.0, rng=np.random.default_rng(99)
        )
        events = list(trace.events())
        inc, di = self._twins(pts, d0)
        inc_s, di_s = self._twins(pts, d0)
        cap = _capacity(inc, events)
        with TileWorkerPool(
            inc, di, workers=2, capacity=cap, max_backlog=0
        ) as pool:
            for lo in range(0, len(events), 20):
                pool.apply_batch(events[lo : lo + 20])
                for ev in events[lo : lo + 20]:
                    di_s.update_event(inc_s.apply(ev))
                assert inc.edge_set() == inc_s.edge_set()
                assert di.interference_sets() == di_s.interference_sets()

    def test_grid_tiles_argument_validation(self):
        pts = uniform_points(40, rng=2)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        grid = TileGrid.cover((0.0, 0.0, 1.0, 1.0), shape=(2, 2))
        with pytest.raises(ValueError, match="not both"):
            TileWorkerPool(inc, workers=1, capacity=64, grid=grid, tiles=(2, 2))

    def test_pool_telemetry_carries_halo_traffic(self):
        pts = uniform_points(100, rng=21)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        trace = random_event_trace(
            pts, 30, move_sigma=d0 / 2.0, rng=np.random.default_rng(7)
        )
        events = list(trace.events())
        inc, di = self._twins(pts, d0)
        with TileWorkerPool(inc, di, workers=2, capacity=_capacity(inc, events)) as pool:
            pool.apply_batch(events)
            snap = pool.telemetry_snapshot()
            assert sorted(snap) == [0, 1]
            for tele in snap.values():
                assert tele["diffs_in"] >= 0
                assert tele["diffs_suppressed"] >= 0
                assert tele["shm_bytes"] == pool._arena.nbytes > 0
                assert tele["rss_bytes"] > 0


class TestPooledMac:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_mac_step_bit_identical_to_serial(self, workers):
        pts = uniform_points(220, rng=31) * 3.0
        d0 = max_range_for_connectivity(pts, slack=1.5)
        trace = random_event_trace(
            pts, 60, move_sigma=d0 / 2.0, rng=np.random.default_rng(600 + workers)
        )
        events = list(trace.events())
        inc = IncrementalTheta(pts, THETA, d0)
        di = DynamicInterference(inc, DELTA)
        inc_s = IncrementalTheta(pts, THETA, d0)
        di_s = DynamicInterference(inc_s, DELTA)
        mac_s = DynamicMAC(di_s, bound_mode="own")
        with TileWorkerPool(
            inc, di, workers=workers, capacity=_capacity(inc, events)
        ) as pool:
            for lo in range(0, len(events), 20):
                pool.apply_batch(events[lo : lo + 20])
                for ev in events[lo : lo + 20]:
                    di_s.update_event(inc_s.apply(ev))
                for step in (lo, lo + 1):
                    got = pool.mac_step(seed=911, step=step)
                    ref = mac_s.deterministic_step(seed=911, step=step)
                    assert np.array_equal(got.edges, ref.edges)
                    assert np.array_equal(got.ok, ref.ok)
                    assert np.array_equal(got.costs, ref.costs)
                    assert got.activated == ref.activated
                    assert got.succeeded == ref.succeeded

    def test_mac_requires_interference_replica(self):
        pts = uniform_points(40, rng=3)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        with TileWorkerPool(inc, workers=1, capacity=64) as pool:
            with pytest.raises(RuntimeError, match="DynamicInterference"):
                pool.mac_step(seed=1, step=0)


class TestEdgeUniforms:
    def test_order_and_subset_independent(self):
        codes = (np.arange(50, dtype=np.int64) << 32) | np.arange(1, 51)
        u = edge_uniforms(codes, 5, 3)
        perm = np.random.default_rng(0).permutation(50)
        assert np.array_equal(edge_uniforms(codes[perm], 5, 3), u[perm])
        assert np.array_equal(edge_uniforms(codes[:7], 5, 3), u[:7])

    def test_uniform_range_and_sensitivity(self):
        codes = (np.arange(2000, dtype=np.int64) << 32) | 1
        u = edge_uniforms(codes, 9, 0)
        assert ((u >= 0.0) & (u < 1.0)).all()
        assert 0.3 < u.mean() < 0.7  # crude uniformity sanity check
        assert not np.array_equal(u, edge_uniforms(codes, 10, 0))
        assert not np.array_equal(u, edge_uniforms(codes, 9, 1))

    def test_empty_input(self):
        assert edge_uniforms(np.empty(0, dtype=np.int64), 1, 1).shape == (0,)
