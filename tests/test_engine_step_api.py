"""The engine's resumable step API and per-engine observability handles.

The service (:mod:`repro.service`) drives long-lived sessions through
``SimulationEngine.step()``/``run_steps()`` instead of one-shot
``run()``.  These tests pin the two contracts that makes safe:

* stepped execution is **bit-identical** to the batch ``run()`` it
  decomposes — same stats, same leftover, same step-series columns;
* engines given explicit ``tracer=``/``registry=`` handles never leak
  spans, counters, or series rows into the module-level globals or
  into each other, even when two sessions' steps interleave.
"""

import math

import numpy as np

from repro import (
    BalancingConfig,
    BalancingRouter,
    DynamicTopology,
    IncrementalTheta,
    SimulationEngine,
    failstop_trace,
    max_range_for_connectivity,
    uniform_points,
)
from repro.obs import metrics, trace
from repro.obs.metrics import MetricsRegistry, StepSeries
from repro.obs.trace import Tracer

THETA = math.pi / 9


def _build(seed, *, n=24, steps=40):
    pts = uniform_points(n, rng=seed)
    d0 = max_range_for_connectivity(pts, slack=1.5)
    inc = IncrementalTheta(pts, THETA, d0)
    events = failstop_trace(
        n, steps, fail_rate=0.05, mean_downtime=6.0, min_alive=n - 4, rng=seed + 1
    )
    dyn = DynamicTopology(inc, events)
    router = BalancingRouter(dyn.capacity, [0, 1], BalancingConfig(0.0, 0.0, 64))
    gen = np.random.default_rng(seed + 2)

    def injections(t):
        if t >= steps - 10:
            return []
        return [(int(gen.integers(2, n)), int(gen.choice([0, 1])), 1)]

    series = StepSeries()
    engine = SimulationEngine(
        router, injections_fn=injections, dynamic=dyn, step_series=series
    )
    return engine, router, series


class TestSteppedVsBatch:
    def test_step_by_step_is_bit_identical_to_run(self):
        steps = 40
        batch_engine, batch_router, batch_series = _build(11, steps=steps)
        batch = batch_engine.run(steps, drain=5)

        step_engine, step_router, step_series = _build(11, steps=steps)
        for _ in range(steps):
            step_engine.step()
        for _ in range(5):
            step_engine.step(inject=False)
        stepped = step_engine.result()

        assert stepped.stats.to_dict() == batch.stats.to_dict()
        assert stepped.leftover == batch.leftover
        assert stepped.steps == batch.steps == steps + 5
        ba, sa = batch_series.arrays(), step_series.arrays()
        assert set(ba) == set(sa)
        for name in ba:
            np.testing.assert_array_equal(ba[name], sa[name], err_msg=name)

    def test_run_steps_in_uneven_chunks_matches_run(self):
        steps = 36
        batch_engine, batch_router, _ = _build(5, steps=steps)
        batch = batch_engine.run(steps)

        chunk_engine, chunk_router, _ = _build(5, steps=steps)
        for k in (1, 7, 13, 15):  # sums to 36
            chunk_engine.run_steps(k)
        assert chunk_engine.t == steps
        chunked = chunk_engine.result()
        assert chunked.stats.to_dict() == batch.stats.to_dict()
        assert chunked.leftover == batch.leftover

    def test_step_returns_advancing_cursor_and_records_series(self):
        engine, _, series = _build(3)
        assert engine.t == 0
        assert engine.step() == 0
        assert engine.step() == 1
        assert engine.t == 2
        assert len(series) == 2
        result = engine.result()
        assert result.steps == 2
        assert result.series is series

    def test_run_after_steps_counts_only_its_own_steps(self):
        engine, _, _ = _build(9)
        engine.run_steps(4)
        result = engine.run(6)
        assert result.steps == 6
        assert engine.t == 10


class TestPerEngineObservability:
    def test_explicit_handles_do_not_touch_globals(self):
        trace.disable()
        metrics.disable()
        tracer = Tracer()
        registry = MetricsRegistry()
        pts = uniform_points(16, rng=2)
        d0 = max_range_for_connectivity(pts, slack=1.5)
        inc = IncrementalTheta(pts, THETA, d0)
        from repro.dynamic.events import EventTrace

        dyn = DynamicTopology(inc, EventTrace([]))
        router = BalancingRouter(dyn.capacity, [0], BalancingConfig(0.0, 0.0, 32))
        engine = SimulationEngine(
            router,
            injections_fn=lambda t: [(3, 0, 1)],
            dynamic=dyn,
            tracer=tracer,
            registry=registry,
        )
        engine.run(10)
        assert trace.active() is None and metrics.active() is None
        assert tracer.total_appended > 0
        assert registry.snapshot()["counters"]["engine.steps"] == 10
        # The engine auto-created a series and registered it on *its*
        # tracer (not the global one).
        assert len(tracer.series) == 1

    def test_interleaved_sessions_do_not_cross_talk(self):
        """Two engines stepped alternately keep fully disjoint telemetry."""
        trace.disable()
        metrics.disable()
        sessions = []
        for seed in (21, 22):
            pts = uniform_points(20, rng=seed)
            d0 = max_range_for_connectivity(pts, slack=1.5)
            inc = IncrementalTheta(pts, THETA, d0)
            events = failstop_trace(
                20, 30, fail_rate=0.08, mean_downtime=5.0, min_alive=16, rng=seed
            )
            dyn = DynamicTopology(inc, events)
            router = BalancingRouter(dyn.capacity, [0], BalancingConfig(0.0, 0.0, 32))
            gen = np.random.default_rng(seed)
            series = StepSeries()
            engine = SimulationEngine(
                router,
                injections_fn=lambda t, gen=gen, n=20: [(int(gen.integers(1, n)), 0, 1)],
                dynamic=dyn,
                step_series=series,
                tracer=Tracer(),
                registry=MetricsRegistry(),
            )
            sessions.append((engine, router, series))

        # Interleave: a:3, b:5, a:7, b:2, a:20, b:23 → both reach t=30.
        (ea, ra, sa), (eb, rb, sb) = sessions
        for engine, k in ((ea, 3), (eb, 5), (ea, 7), (eb, 2), (ea, 20), (eb, 23)):
            engine.run_steps(k)
        assert ea.t == eb.t == 30

        # Each series reconciles against exactly its own router...
        assert not sa.reconcile(ra.stats.to_dict())
        assert not sb.reconcile(rb.stats.to_dict())
        # ...and the two runs genuinely differ (different seeds), so a
        # cross-reconcile would have to fail if rows had leaked.
        assert ra.stats.to_dict() != rb.stats.to_dict()
        assert sa.reconcile(rb.stats.to_dict()) or sb.reconcile(ra.stats.to_dict())
        # Spans stayed per-session: each tracer holds exactly its own
        # 30 engine.step spans, none of the other session's.
        for engine in (ea, eb):
            spans = [e for e in engine.tracer.events() if e["name"] == "engine.step"]
            assert len(spans) == 30
            assert [s["args"]["step"] for s in spans] == list(range(30))

    def test_tracer_ring_is_thread_safe_under_concurrent_steps(self):
        """Two engines sharing one tracer from two threads stay consistent."""
        import threading

        shared = Tracer(1 << 12)
        engines = []
        for seed in (31, 32):
            pts = uniform_points(16, rng=seed)
            d0 = max_range_for_connectivity(pts, slack=1.5)
            inc = IncrementalTheta(pts, THETA, d0)
            from repro.dynamic.events import EventTrace

            dyn = DynamicTopology(inc, EventTrace([]))
            router = BalancingRouter(dyn.capacity, [0], BalancingConfig(0.0, 0.0, 32))
            engines.append(
                SimulationEngine(
                    router,
                    injections_fn=lambda t: [(3, 0, 1)],
                    dynamic=dyn,
                    tracer=shared,
                    registry=MetricsRegistry(),
                )
            )
        threads = [
            threading.Thread(target=e.run_steps, args=(50,)) for e in engines
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every span either fits the ring or was counted as appended.
        assert shared.total_appended >= 100
        assert len(shared.events()) <= 1 << 12
