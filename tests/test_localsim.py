"""Tests for the 3-round local message-passing protocol (E11)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.theta import theta_algorithm
from repro.geometry.pointsets import DISTRIBUTIONS, uniform_points
from repro.graphs.transmission import max_range_for_connectivity
from repro.localsim.messages import ConnectionMessage, NeighborhoodMessage, PositionMessage
from repro.localsim.node import LocalNode
from repro.localsim.runtime import LocalRuntime


class TestLocalNode:
    def test_round1_broadcast_contains_position(self):
        node = LocalNode(3, (1.5, 2.5), math.pi / 6, 1.0)
        msg = node.round1_broadcast()
        assert msg == PositionMessage(3, 1.5, 2.5)

    def test_round1_receive_ignores_self(self):
        node = LocalNode(0, (0, 0), math.pi / 6, 1.0)
        node.round1_receive(PositionMessage(0, 5, 5))
        assert node.known_positions == {}

    def test_round2_unicast_targets_yao_choices(self):
        node = LocalNode(0, (0, 0), math.pi / 6, 10.0)
        node.round1_receive(PositionMessage(1, 1.0, 0.0))
        node.round1_receive(PositionMessage(2, 2.0, 0.0))  # same sector, farther
        node.round1_receive(PositionMessage(3, 0.0, 1.0))
        msgs = node.round2_messages()
        targets = {m.receiver for m in msgs}
        assert targets == {1, 3}
        for m in msgs:
            assert set(m.neighborhood) == {1, 3}

    def test_round2_receive_only_if_member(self):
        node = LocalNode(5, (0, 0), math.pi / 6, 1.0)
        for sender in (7, 8, 9):
            node.round1_receive(PositionMessage(sender, 0.5, 0.1 * sender))
        node.round2_receive(NeighborhoodMessage(7, 5, (5, 9)))
        node.round2_receive(NeighborhoodMessage(8, 5, (9,)))  # 5 not a member
        node.round2_receive(NeighborhoodMessage(9, 6, (5,)))  # unicast to 6
        assert node.claimants == [7]

    def test_round2_receive_unknown_position_ignored(self):
        """Lossy-medium case: a claimant we never heard a Position from
        cannot be evaluated and is skipped."""
        node = LocalNode(5, (0, 0), math.pi / 6, 1.0)
        node.round2_receive(NeighborhoodMessage(7, 5, (5,)))
        assert node.claimants == []

    def test_round3_admits_nearest_per_sector(self):
        node = LocalNode(0, (0, 0), math.pi / 6, 10.0)
        node.round1_receive(PositionMessage(1, 1.0, 0.0))
        node.round1_receive(PositionMessage(2, 2.0, 0.0))
        node.round2_receive(NeighborhoodMessage(1, 0, (0,)))
        node.round2_receive(NeighborhoodMessage(2, 0, (0,)))
        msgs = node.round3_messages()
        assert [m.receiver for m in msgs] == [1]  # nearest claimant only
        assert (0, 1) in node.edges

    def test_round3_receive_records_edge(self):
        node = LocalNode(4, (0, 0), math.pi / 6, 1.0)
        node.round3_receive(ConnectionMessage(2, 4))
        assert (2, 4) in node.edges
        node.round3_receive(ConnectionMessage(9, 7))  # someone else's
        assert (7, 9) not in node.edges


class TestRuntimeEquivalence:
    @pytest.mark.parametrize("dist_name", ["uniform", "clustered", "ring"])
    def test_matches_centralized(self, dist_name):
        pts = DISTRIBUTIONS[dist_name](70, rng=3)
        d = max_range_for_connectivity(pts, slack=1.4)
        theta = math.pi / 9
        local = LocalRuntime(pts, theta, d).run()
        central = theta_algorithm(pts, theta, d)
        assert np.array_equal(local.edges, central.graph.edges)

    @given(st.integers(5, 50), st.integers(0, 8))
    @settings(max_examples=12, deadline=None)
    def test_property_equivalence(self, n, seed):
        pts = uniform_points(n, rng=seed)
        d = max_range_for_connectivity(pts, slack=1.3)
        theta = math.pi / 6
        local = LocalRuntime(pts, theta, d).run()
        central = theta_algorithm(pts, theta, d)
        assert np.array_equal(local.edges, central.graph.edges)

    def test_offset_respected(self):
        pts = uniform_points(40, rng=5)
        d = max_range_for_connectivity(pts, slack=1.4)
        local = LocalRuntime(pts, math.pi / 9, d, offset=0.3).run()
        central = theta_algorithm(pts, math.pi / 9, d, offset=0.3)
        assert np.array_equal(local.edges, central.graph.edges)


class TestTrace:
    def test_position_messages_one_per_node(self):
        pts = uniform_points(30, rng=6)
        d = max_range_for_connectivity(pts, slack=1.4)
        rt = LocalRuntime(pts, math.pi / 9, d)
        rt.run()
        assert rt.trace.position_messages == 30
        assert rt.trace.rounds == 3

    def test_connection_messages_equal_edges(self):
        pts = uniform_points(30, rng=7)
        d = max_range_for_connectivity(pts, slack=1.4)
        rt = LocalRuntime(pts, math.pi / 9, d)
        g = rt.run()
        # One Connection message per admitted (receiver, sector) pair;
        # each undirected edge may be confirmed from both sides.
        assert g.n_edges <= rt.trace.connection_messages <= 2 * g.n_edges

    def test_message_count_linear_in_n(self):
        """Total messages = O(n) — the locality claim of E11."""
        counts = {}
        for n in (40, 80, 160):
            pts = uniform_points(n, rng=8)
            d = max_range_for_connectivity(pts, slack=1.4)
            rt = LocalRuntime(pts, math.pi / 9, d)
            rt.run()
            counts[n] = rt.trace.total_messages / n
        vals = list(counts.values())
        assert max(vals) / min(vals) < 1.6  # per-node count roughly flat

    def test_as_dict(self):
        pts = uniform_points(10, rng=9)
        rt = LocalRuntime(pts, math.pi / 9, 1.0)
        rt.run()
        d = rt.trace.as_dict()
        assert d["n_nodes"] == 10.0
        assert d["total_messages"] == float(rt.trace.total_messages)

    def test_round_seconds_recorded(self):
        pts = uniform_points(10, rng=9)
        rt = LocalRuntime(pts, math.pi / 9, 1.0)
        rt.run()
        assert set(rt.trace.round_seconds) == {"round1", "round2", "round3"}
        assert all(s >= 0.0 for s in rt.trace.round_seconds.values())

    def test_payload_byte_accounting(self):
        """payload_units follows the stated size model exactly:

        Position = 2 floats per node, Neighborhood = |N(u)| ids per
        unicast (one unicast per member, so |N(u)|² units per node),
        Connection = 1 id per message.
        """
        pts = uniform_points(40, rng=11)
        d = max_range_for_connectivity(pts, slack=1.4)
        rt = LocalRuntime(pts, math.pi / 9, d)
        rt.run()
        n = len(rt.nodes)
        # Reconstruct per-round sizes from the post-run node state.
        nbhd_sizes = [len(set(nd.yao_choices.values())) for nd in rt.nodes]
        conn_counts = [len(set(nd.admitted.values())) for nd in rt.nodes]
        assert rt.trace.position_messages == n
        assert rt.trace.neighborhood_messages == sum(nbhd_sizes)
        assert rt.trace.connection_messages == sum(conn_counts)
        expected_payload = 2 * n + sum(s * s for s in nbhd_sizes) + sum(conn_counts)
        assert rt.trace.payload_units == expected_payload
