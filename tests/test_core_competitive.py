"""Tests for competitive-ratio bookkeeping and theorem parameter rules."""

from __future__ import annotations

import pytest

from repro.core.competitive import (
    CompetitiveReport,
    theorem31_parameters,
    theorem33_parameters,
)
from repro.sim.stats import RoutingStats


def make_stats(delivered=80, energy=40.0, max_h=10) -> RoutingStats:
    st = RoutingStats()
    st.delivered = delivered
    st.energy_attempted = energy
    st.max_buffer_height = max_h
    st.injected = 100
    return st


class TestReport:
    def test_ratios_computed(self):
        rep = CompetitiveReport.from_stats(
            make_stats(), witness_delivered=100, witness_avg_cost=0.25, witness_buffer=5
        )
        assert rep.throughput_ratio == pytest.approx(0.8)
        assert rep.cost_ratio == pytest.approx((40.0 / 80) / 0.25)
        assert rep.space_ratio == pytest.approx(2.0)

    def test_zero_witness_delivered(self):
        rep = CompetitiveReport.from_stats(
            make_stats(), witness_delivered=0, witness_avg_cost=0.0, witness_buffer=1
        )
        assert rep.throughput_ratio == 1.0

    def test_zero_witness_cost_with_spend(self):
        rep = CompetitiveReport.from_stats(
            make_stats(), witness_delivered=10, witness_avg_cost=0.0, witness_buffer=1
        )
        assert rep.cost_ratio == float("inf")

    def test_as_dict_keys(self):
        rep = CompetitiveReport.from_stats(
            make_stats(), witness_delivered=10, witness_avg_cost=1.0, witness_buffer=1
        )
        d = rep.as_dict()
        assert set(d) >= {"throughput_ratio", "space_ratio", "cost_ratio"}


class TestTheorem31Parameters:
    def test_formulas(self):
        p = theorem31_parameters(
            opt_buffer=2, avg_path_length=4.0, avg_cost=1.0, epsilon=0.25, delta_frequencies=3
        )
        assert p["threshold"] == pytest.approx(2 + 2 * 2)  # B + 2(δ-1)
        assert p["gamma"] == pytest.approx((6 + 2 + 3) * 4.0 / 1.0)
        assert p["cost_factor"] == pytest.approx(9.0)
        assert p["target_fraction"] == pytest.approx(0.75)

    def test_space_factor_grows_with_1_over_eps(self):
        kw = dict(opt_buffer=2, avg_path_length=4.0, avg_cost=1.0)
        s1 = theorem31_parameters(epsilon=0.5, **kw)["space_factor"]
        s2 = theorem31_parameters(epsilon=0.25, **kw)["space_factor"]
        assert s2 == pytest.approx(2 * (s1 - 1) + 1)

    def test_single_frequency_threshold(self):
        p = theorem31_parameters(
            opt_buffer=3, avg_path_length=2.0, avg_cost=0.5, epsilon=0.1, delta_frequencies=1
        )
        assert p["threshold"] == pytest.approx(3.0)  # B + 0

    @pytest.mark.parametrize(
        "bad",
        [
            dict(epsilon=0.0),
            dict(epsilon=1.0),
            dict(opt_buffer=0),
            dict(avg_path_length=0.5),
            dict(avg_cost=0.0),
            dict(delta_frequencies=0),
        ],
    )
    def test_invalid_inputs(self, bad):
        kw = dict(
            opt_buffer=2, avg_path_length=4.0, avg_cost=1.0, epsilon=0.25, delta_frequencies=1
        )
        kw.update(bad)
        with pytest.raises(ValueError):
            theorem31_parameters(**kw)


class TestTheorem33Parameters:
    def test_formulas(self):
        p = theorem33_parameters(
            opt_buffer=2, avg_path_length=3.0, avg_cost=1.5, epsilon=0.2, interference_bound=10
        )
        assert p["threshold"] == pytest.approx(5.0)  # 2B+1
        assert p["gamma"] == pytest.approx((5 + 2) * 3.0 / 1.5)
        assert p["target_fraction"] == pytest.approx(0.8 / 80.0)

    def test_floor_shrinks_with_interference(self):
        kw = dict(opt_buffer=1, avg_path_length=2.0, avg_cost=1.0, epsilon=0.25)
        f1 = theorem33_parameters(interference_bound=1, **kw)["target_fraction"]
        f10 = theorem33_parameters(interference_bound=10, **kw)["target_fraction"]
        assert f1 == pytest.approx(10 * f10)

    def test_invalid_interference(self):
        with pytest.raises(ValueError):
            theorem33_parameters(
                opt_buffer=1,
                avg_path_length=2.0,
                avg_cost=1.0,
                epsilon=0.25,
                interference_bound=0,
            )
