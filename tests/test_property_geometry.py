"""Extra hypothesis suites for the geometric substrate."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry.hexgrid import HexGrid
from repro.geometry.pointsets import uniform_points
from repro.geometry.primitives import pairwise_distances
from repro.geometry.sectors import SectorPartition

cells = st.tuples(st.integers(-20, 20), st.integers(-20, 20))


class TestHexDistanceMetric:
    @given(cells, cells, cells)
    def test_triangle_inequality(self, a, b, c):
        hg = HexGrid(1.0)
        assert hg.cell_distance(a, c) <= hg.cell_distance(a, b) + hg.cell_distance(b, c)

    @given(cells, cells)
    def test_identity_and_positivity(self, a, b):
        hg = HexGrid(1.0)
        d = hg.cell_distance(a, b)
        assert d >= 0
        assert (d == 0) == (a == b)

    @given(cells)
    def test_neighbors_at_distance_one(self, a):
        hg = HexGrid(1.0)
        for nb in hg.neighbors_of(a):
            assert hg.cell_distance(a, tuple(nb)) == 1

    @given(cells, st.floats(0.3, 4.0))
    def test_center_distance_proportional(self, a, side):
        """Euclidean distance between centers ≥ hex distance × s·√3/... —
        concretely, adjacent centers are exactly s·√3 apart, and k-away
        centers are ≥ k·s·√3/2."""
        hg = HexGrid(side)
        b = (a[0] + 3, a[1] - 1)
        k = hg.cell_distance(a, b)
        euclid = float(np.hypot(*(hg.center_of(np.array(b)) - hg.center_of(np.array(a)))))
        assert euclid >= k * side * math.sqrt(3) / 2 - 1e-9


class TestSectorCoverage:
    @given(st.floats(0.05, math.pi / 3), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_every_direction_has_exactly_one_sector(self, theta, k):
        part = SectorPartition(theta)
        ang = (k / 1000.0) * 2 * math.pi
        idx = part.index_of_angle(ang)
        lo, _hi = part.bounds(int(idx))
        # Angle lies within [lo, lo + width) modulo 2π.
        rel = (ang - lo) % (2 * math.pi)
        assert rel < part.width + 1e-9


class TestDistanceMatrixProperties:
    @given(st.integers(2, 25), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_matrix(self, n, seed):
        pts = uniform_points(n, rng=seed) * 10
        d = pairwise_distances(pts)
        # Sampled triangle checks (full O(n³) is overkill).
        gen = np.random.default_rng(seed)
        for _ in range(20):
            i, j, k = gen.integers(0, n, size=3)
            assert d[i, k] <= d[i, j] + d[j, k] + 1e-9
