"""Tests for the SINR physical interference model (extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.interference.model import InterferenceModel
from repro.interference.physical import PhysicalInterferenceModel


class TestSinr:
    def test_singleton_infinite_sinr_no_noise(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        m = PhysicalInterferenceModel(beta=2.0, noise=0.0)
        s = m.sinr(pts, np.array([[0, 1]]))
        assert np.isinf(s[0])

    def test_singleton_noise_limited(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        m = PhysicalInterferenceModel(beta=2.0, noise=0.25)
        s = m.sinr(pts, np.array([[0, 1]]))
        # Power control: unit received power / noise 0.25 → SINR 4.
        assert s[0] == pytest.approx(4.0)

    def test_two_far_transmissions_succeed(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [100.0, 0.0], [101.0, 0.0]])
        m = PhysicalInterferenceModel(beta=2.0)
        ok = m.successful_mask(pts, np.array([[0, 1], [2, 3]]))
        assert ok.all()

    def test_two_close_transmissions_fail(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.5, 0.0], [2.5, 0.0]])
        m = PhysicalInterferenceModel(beta=2.0)
        ok = m.successful_mask(pts, np.array([[0, 1], [2, 3]]))
        assert not ok.all()

    def test_known_two_link_sinr(self):
        """Hand-computed symmetric configuration, power control, κ=2."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 3.0], [1.0, 3.0]])
        m = PhysicalInterferenceModel(beta=1.0, kappa=2.0, noise=0.0)
        s = m.sinr(pts, np.array([[0, 1], [2, 3]]))
        # Sender j at distance sqrt(1+9)=sqrt(10) from receiver i; both
        # links length 1 → power 1 → interference 1/10; SINR = 10.
        assert s == pytest.approx([10.0, 10.0])

    def test_fixed_power_mode(self):
        """Without power control a longer link has lower SINR."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [12.0, 0.0]])
        m = PhysicalInterferenceModel(beta=1.0, power_control=False, noise=1e-6)
        s = m.sinr(pts, np.array([[0, 1], [2, 3]]))
        assert s[0] > s[1]  # link length 1 vs 2

    def test_coincident_pair_rejected(self):
        pts = np.array([[0.0, 0.0], [0.0, 0.0]])
        m = PhysicalInterferenceModel()
        with pytest.raises(ValueError):
            m.sinr(pts, np.array([[0, 1]]))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PhysicalInterferenceModel(beta=0.0)
        with pytest.raises(ValueError):
            PhysicalInterferenceModel(noise=-1.0)

    def test_empty(self):
        m = PhysicalInterferenceModel()
        assert len(m.sinr(np.zeros((2, 2)) + [[0, 0], [1, 1]], np.empty((0, 2), int))) == 0


class TestAgainstProtocolModel:
    @given(st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_protocol_model_is_conservative_for_pairs(self, seed):
        """For two links, guard-zone success (large Δ) implies good SINR:
        the protocol model with a generous guard zone is the conservative
        simplification the paper describes."""
        gen = np.random.default_rng(seed)
        pts = gen.uniform(0, 10, (4, 2))
        edges = np.array([[0, 1], [2, 3]])
        if np.hypot(*(pts[0] - pts[1])) < 0.1 or np.hypot(*(pts[2] - pts[3])) < 0.1:
            return
        protocol = InterferenceModel(delta=2.0).successful_mask(pts, edges)
        sinr = PhysicalInterferenceModel(beta=2.0, kappa=2.0).successful_mask(pts, edges)
        for p_ok, s_ok in zip(protocol, sinr):
            if p_ok and not s_ok:
                # Allowed only if the *other* link is long relative to
                # separation — aggregate interference has no analogue in
                # the pairwise model; just assert SINR isn't absurdly low.
                s = PhysicalInterferenceModel(beta=2.0).sinr(pts, edges)
                assert s.min() > 0.05
